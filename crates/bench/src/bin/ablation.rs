//! Ablations beyond the paper's headline results (see DESIGN.md §5):
//!
//! 1. **Complex vs. simple reservation tables** for the same machine —
//!    quantifies how much iteration/displacement the complex tables force
//!    (the paper's motivation for iterative scheduling).
//! 2. **VLIW vs. conservative delay model** (Table 1's two columns) — the
//!    conservative model can only lengthen delays, so MIIs and IIs may
//!    grow.
//! 3. **RecMII via MinDist vs. circuit enumeration** — the two methods of
//!    §2.2 must agree wherever enumeration is feasible; enumeration blows
//!    up on dense recurrence structures, which is why the paper uses the
//!    MinDist formulation.

use ims_bench::pool::threads_from_args;
use ims_bench::{measure_corpus_traced, parse_trace_dir};
use ims_core::{
    modulo_schedule, rec_mii, rec_mii_by_circuits, Counters, PriorityKind, SchedConfig,
};
use ims_deps::{build_problem, BuildOptions, DelayModel};
use ims_loopgen::corpus_of_size;
use ims_machine::{cydra, cydra_simple};
use ims_stats::table::{num, Table};

fn main() {
    let corpus = corpus_of_size(0xC4D5, 400);
    let threads = threads_from_args();
    let args: Vec<String> = std::env::args().collect();
    // With --trace DIR, the two reservation-table runs write their
    // per-loop traces side by side (`complex_loop_*` / `simple_loop_*`).
    let trace_dir = parse_trace_dir(&args);
    println!("Ablations over {} corpus loops\n", corpus.len());

    // ----- 1. Complex vs simple reservation tables -----
    let trace = |machine: &ims_machine::MachineModel, prefix: &str| {
        measure_corpus_traced(&corpus, machine, 6.0, threads, trace_dir.as_deref(), prefix)
            .unwrap_or_else(|e| {
                eprintln!("ablation: cannot write traces: {e}");
                std::process::exit(1);
            })
    };
    let complex = trace(&cydra(), "complex_");
    let simple = trace(&cydra_simple(), "simple_");
    let mean = |xs: &[f64]| xs.iter().sum::<f64>() / xs.len() as f64;
    let ineff = |ms: &[ims_bench::LoopMeasurement]| {
        let steps: u64 = ms.iter().map(|m| m.total_steps).sum();
        let ops: usize = ms.iter().map(|m| m.n_ops).sum();
        steps as f64 / ops as f64
    };
    let frac_opt = |ms: &[ims_bench::LoopMeasurement]| {
        ms.iter().filter(|m| m.delta_ii() == 0).count() as f64 / ms.len() as f64
    };
    let mut t = Table::new(vec![
        "Reservation tables".into(),
        "mean II".into(),
        "II=MII".into(),
        "sched inefficiency".into(),
    ]);
    for (name, ms) in [("complex (cydra)", &complex), ("simple (cydra_simple)", &simple)] {
        let iis: Vec<f64> = ms.iter().map(|m| m.ii as f64).collect();
        t.row(vec![
            name.into(),
            num(mean(&iis), 2),
            format!("{:.1}%", 100.0 * frac_opt(ms)),
            num(ineff(ms), 3),
        ]);
    }
    print!("{}", t.render());
    println!(
        "(both models contain the unpipelined divide-unit blocks that force\n\
         displacement; the simple model makes divide/sqrt block the whole\n\
         multiplier, so it can be *harder* to pack than the complex one)\n"
    );

    // ----- 2. Delay models -----
    let machine = cydra();
    let mut rows = Table::new(vec![
        "Delay model".into(),
        "mean MII".into(),
        "mean II".into(),
    ]);
    for (name, model) in [
        ("VLIW (Table 1 left)", DelayModel::Vliw),
        ("conservative (Table 1 right)", DelayModel::Conservative),
    ] {
        let mut miis = Vec::new();
        let mut iis = Vec::new();
        for l in &corpus.loops {
            let p = build_problem(&l.body, &machine, &BuildOptions { delay_model: model });
            let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(6.0))
                .expect("corpus loops schedule");
            miis.push(out.mii.mii as f64);
            iis.push(out.schedule.ii as f64);
        }
        rows.row(vec![name.into(), num(mean(&miis), 3), num(mean(&iis), 3)]);
    }
    print!("{}", rows.render());
    println!(
        "(on this system the two models coincide: dynamic single assignment\n\
         eliminates register anti/output dependences, and the remaining\n\
         memory anti/output dependences always have a 1-cycle store as the\n\
         successor/predecessor, where Table 1's two columns agree — the\n\
         formulas themselves are unit-tested in ims-deps)\n"
    );

    // ----- 3. Priority functions (§3.2's claim) -----
    let mut pt = Table::new(vec![
        "priority".into(),
        "II=MII".into(),
        "mean II".into(),
        "sched inefficiency".into(),
    ]);
    for (name, kind) in [
        ("HeightR (paper)", PriorityKind::HeightR),
        ("critical path (no II discount)", PriorityKind::CriticalPath),
        ("input order", PriorityKind::InputOrder),
    ] {
        let mut optimal = 0usize;
        let mut ii_sum = 0f64;
        let mut steps = 0u64;
        let mut ops = 0usize;
        for l in &corpus.loops {
            let p = build_problem(&l.body, &machine, &BuildOptions::default());
            let out = modulo_schedule(&p, &SchedConfig::new().budget_ratio(6.0).priority(kind))
                .expect("corpus loops schedule");
            if out.delta_ii() == 0 {
                optimal += 1;
            }
            ii_sum += out.schedule.ii as f64;
            steps += out.stats.total_steps();
            ops += p.num_ops();
        }
        pt.row(vec![
            name.into(),
            format!("{:.1}%", 100.0 * optimal as f64 / corpus.loops.len() as f64),
            num(ii_sum / corpus.loops.len() as f64, 2),
            num(steps as f64 / ops as f64, 3),
        ]);
    }
    print!("{}", pt.render());
    println!(
        "(§3.2 claims HeightR is near-best; on this corpus all three achieve\n\
         the MII almost everywhere — back-substitution leaves few tight\n\
         recurrences — so the differences are small and show up mainly in\n\
         scheduling effort)\n"
    );

    // ----- 4. RecMII: MinDist vs circuit enumeration -----
    let mut agree = 0usize;
    let mut enumerable = 0usize;
    let mut truncated = 0usize;
    let t0 = std::time::Instant::now();
    let mut mindist_time = std::time::Duration::ZERO;
    let mut circuits_time = std::time::Duration::ZERO;
    for l in &corpus.loops {
        let p = build_problem(&l.body, &machine, &BuildOptions::default());
        let s = std::time::Instant::now();
        let by_mindist = rec_mii(&p, 1, &mut Counters::new());
        mindist_time += s.elapsed();
        let s = std::time::Instant::now();
        let by_circuits = rec_mii_by_circuits(&p, 200_000);
        circuits_time += s.elapsed();
        match by_circuits {
            Some(c) => {
                enumerable += 1;
                if c == by_mindist {
                    agree += 1;
                }
            }
            None => truncated += 1,
        }
    }
    println!(
        "RecMII cross-check: {agree}/{enumerable} agreements, {truncated} loops with\n\
         too many elementary circuits to enumerate (cap 200k).\n\
         MinDist method: {:?} total; circuit enumeration: {:?} total ({:?} elapsed).",
        mindist_time,
        circuits_time,
        t0.elapsed()
    );
    assert_eq!(agree, enumerable, "the two RecMII methods must agree");
}
