//! Std-only micro-benchmarks on the [`ims_testkit::bench`] harness.
//!
//! These replace the former Criterion benches with plain functions that run
//! under `cargo run --release` (via the `bench_scheduler` / `bench_mii`
//! binaries) or, in smoke form, under `cargo test --release`. Each bench
//! emits one machine-readable JSON line combining the timing order
//! statistics with the scheduler's own observability counters (budget
//! consumed, evictions, IIs attempted), so appending runs to a
//! `BENCH_*.json` file accumulates a trajectory over time.

use ims_core::{
    compute_mii, height_r, modulo_schedule, rec_mii, rec_mii_by_circuits, res_mii, Counters,
    Problem, SchedConfig,
};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_loopgen::{generate_loop, SynthConfig};
use ims_machine::{cydra, MachineModel};
use ims_testkit::bench::{black_box, run, BenchSpec, JsonValue};
use ims_testkit::Xoshiro256;

/// Builds the deterministic synthetic problem used by a bench scenario.
fn synth_problem<'m>(
    machine: &'m MachineModel,
    seed: u64,
    ops_target: usize,
    recurrences: Vec<usize>,
) -> Problem<'m> {
    let cfg = SynthConfig {
        ops_target,
        recurrences,
        with_branch: true,
    };
    let body = generate_loop(&mut Xoshiro256::seed_from_u64(seed), &cfg);
    let body = back_substitute(&body, machine);
    build_problem(&body, machine, &BuildOptions::default())
}

/// Times one full [`modulo_schedule`] run and emits a JSON line carrying
/// the timing plus the run's scheduler counters.
fn scheduler_line(name: &str, spec: &BenchSpec, problem: &Problem<'_>, config: &SchedConfig) -> String {
    let result = run(name, *spec, || {
        black_box(modulo_schedule(black_box(problem), config).expect("schedules"));
    });
    // Counters are deterministic per problem, so one un-timed run suffices.
    let out = modulo_schedule(problem, config).expect("schedules");
    result.json_line(&[
        ("ops", JsonValue::U64(problem.op_nodes().count() as u64)),
        ("ii", JsonValue::I64(out.schedule.ii)),
        ("mii", JsonValue::I64(out.mii.mii)),
        ("budget_steps", JsonValue::U64(out.stats.total_steps())),
        ("evictions", JsonValue::U64(out.stats.counters.evictions)),
        ("iis_attempted", JsonValue::U64(out.stats.attempts.len() as u64)),
    ])
}

/// Scheduler throughput benches: whole-pipeline scheduling across loop
/// sizes, budget-ratio sensitivity, and front-end (back-substitution +
/// problem construction) cost. Returns one JSON line per scenario.
pub fn scheduler_benches(spec: &BenchSpec) -> Vec<String> {
    let machine = cydra();
    let mut lines = Vec::new();

    // Whole-pipeline scheduling time as loop size grows (Table 4's regime).
    for &n in &[8usize, 16, 32, 64, 128] {
        let recurrences = if n >= 16 { vec![3] } else { vec![] };
        let problem = synth_problem(&machine, n as u64, n, recurrences);
        lines.push(scheduler_line(
            &format!("schedule/ops_{n}"),
            spec,
            &problem,
            &SchedConfig::default(),
        ));
    }

    // Budget-ratio sensitivity (§4.3's BudgetRatio sweep) on a fixed loop.
    let problem = synth_problem(&machine, 7, 48, vec![4]);
    for &ratio in &[1.0f64, 2.0, 4.0, 6.0] {
        lines.push(scheduler_line(
            &format!("schedule/budget_{ratio}"),
            spec,
            &problem,
            &SchedConfig::with_budget_ratio(ratio),
        ));
    }

    // Front-end cost: IR back-substitution plus dependence-graph build.
    let cfg = SynthConfig {
        ops_target: 48,
        recurrences: vec![4],
        with_branch: true,
    };
    let raw = generate_loop(&mut Xoshiro256::seed_from_u64(3), &cfg);
    let result = run("front_end/build_48", *spec, || {
        let body = back_substitute(black_box(&raw), &machine);
        black_box(build_problem(&body, &machine, &BuildOptions::default()));
    });
    lines.push(result.json_line(&[("ops", JsonValue::U64(raw.num_ops() as u64))]));

    lines
}

/// MII-computation benches: ResMII, RecMII by MinDist, RecMII by circuit
/// enumeration, the combined MII, and the HeightR priority, across loop
/// sizes. Returns one JSON line per scenario.
pub fn mii_benches(spec: &BenchSpec) -> Vec<String> {
    let machine = cydra();
    let mut lines = Vec::new();
    for &n in &[12usize, 40, 120] {
        let problem = synth_problem(&machine, n as u64, n, vec![3, 2]);
        let ops = problem.op_nodes().count() as u64;
        let mii = compute_mii(&problem, &mut Counters::new());

        let with_work = |result: ims_testkit::bench::BenchResult, c: &Counters| {
            result.json_line(&[
                ("ops", JsonValue::U64(ops)),
                ("mii", JsonValue::I64(mii.mii)),
                (
                    "work",
                    JsonValue::U64(
                        c.scc_work
                            + c.resmii_work
                            + c.mindist_work
                            + c.heightr_work
                            + c.estart_preds
                            + c.findslot_iters,
                    ),
                ),
            ])
        };

        let mut c = Counters::new();
        let r = run(&format!("mii/res_mii_{n}"), *spec, || {
            black_box(res_mii(black_box(&problem), &mut c));
        });
        lines.push(with_work(r, &c));

        let mut c = Counters::new();
        let r = run(&format!("mii/rec_mii_mindist_{n}"), *spec, || {
            black_box(rec_mii(black_box(&problem), 1, &mut c));
        });
        lines.push(with_work(r, &c));

        let c = Counters::new();
        let r = run(&format!("mii/rec_mii_circuits_{n}"), *spec, || {
            black_box(rec_mii_by_circuits(black_box(&problem), 100_000));
        });
        lines.push(with_work(r, &c));

        let mut c = Counters::new();
        let r = run(&format!("mii/compute_mii_{n}"), *spec, || {
            black_box(compute_mii(black_box(&problem), &mut c));
        });
        lines.push(with_work(r, &c));

        let mut c = Counters::new();
        let r = run(&format!("mii/height_r_{n}"), *spec, || {
            black_box(height_r(black_box(&problem), mii.mii, &mut c));
        });
        lines.push(with_work(r, &c));
    }
    lines
}

/// Corpus-scheduling throughput across worker-thread counts: the same
/// 96-loop corpus slice scheduled by the [`crate::pool`] driver at 1, 2,
/// 4, and 8 threads. Each line carries the thread count and the
/// deterministic aggregate step/eviction counters — which must be
/// identical on every line, the pool's determinism guarantee in bench
/// form. Returns one JSON line per thread count.
pub fn corpus_scaling_benches(spec: &BenchSpec) -> Vec<String> {
    use crate::{measure_corpus_threads, LoopMeasurement};
    use ims_loopgen::corpus_of_size;

    let machine = cydra();
    let corpus = corpus_of_size(0xC4D5, 96);
    let mut lines = Vec::new();
    for &threads in &[1usize, 2, 4, 8] {
        let result = run(&format!("corpus/threads_{threads}"), *spec, || {
            black_box(measure_corpus_threads(
                black_box(&corpus),
                &machine,
                2.0,
                threads,
            ));
        });
        let ms: Vec<LoopMeasurement> = measure_corpus_threads(&corpus, &machine, 2.0, threads);
        let steps: u64 = ms.iter().map(|m| m.total_steps).sum();
        let evictions: u64 = ms.iter().map(|m| m.counters.evictions).sum();
        lines.push(result.json_line(&[
            ("threads", JsonValue::U64(threads as u64)),
            ("loops", JsonValue::U64(ms.len() as u64)),
            ("total_steps", JsonValue::U64(steps)),
            ("evictions", JsonValue::U64(evictions)),
        ]));
    }
    lines
}

/// Reads the iteration plan from `IMS_BENCH_WARMUP` / `IMS_BENCH_ITERS`
/// (defaults 3 and 30), so CI and local runs can tune cost without
/// recompiling.
pub fn spec_from_env() -> BenchSpec {
    let get = |key: &str, default: u32| {
        std::env::var(key)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(default)
    };
    BenchSpec::new(get("IMS_BENCH_WARMUP", 3), get("IMS_BENCH_ITERS", 30))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Smoke-level runs (1 warmup, 2 iterations) keep the benches exercised
    // by `cargo test --release` without meaningful wall-clock cost.

    #[test]
    fn scheduler_benches_emit_valid_json_lines() {
        let lines = scheduler_benches(&BenchSpec::smoke());
        assert_eq!(lines.len(), 10);
        for line in &lines {
            assert!(line.starts_with('{') && line.ends_with('}'), "{line}");
            assert!(line.contains("\"median_ns\":"), "{line}");
        }
        // Scheduler scenarios carry the observability counters.
        assert!(lines[0].contains("\"budget_steps\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"evictions\":"), "{}", lines[0]);
        assert!(lines[0].contains("\"iis_attempted\":"), "{}", lines[0]);
    }

    #[test]
    fn corpus_scaling_benches_agree_across_thread_counts() {
        let lines = corpus_scaling_benches(&BenchSpec::smoke());
        assert_eq!(lines.len(), 4);
        // The deterministic aggregates must match on every line: only the
        // timings and the thread count may differ.
        let tail = |l: &str| l.split("\"loops\":").nth(1).map(str::to_string);
        let first = tail(&lines[0]).expect("loops field present");
        for line in &lines[1..] {
            assert_eq!(tail(line).as_ref(), Some(&first), "{line}");
        }
    }

    #[test]
    fn mii_benches_emit_valid_json_lines() {
        let lines = mii_benches(&BenchSpec::smoke());
        assert_eq!(lines.len(), 15);
        for line in &lines {
            assert!(line.contains("\"bench\":\"mii/"), "{line}");
            assert!(line.contains("\"work\":"), "{line}");
        }
    }
}
