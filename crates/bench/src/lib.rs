#![warn(missing_docs)]

//! Reproduction harness: the corpus runner behind every table and figure.
//!
//! Each binary in this crate regenerates one artifact of the paper's
//! evaluation (§4):
//!
//! | binary     | artifact |
//! |------------|----------|
//! | `figure1`  | Figure 1 — reservation tables for a pipelined add and multiply |
//! | `table2`   | Table 2 — the machine model |
//! | `table3`   | Table 3 — distribution statistics for all eleven measurements, plus the prose claims of §4.2/§4.3 |
//! | `figure6`  | Figure 6 — execution-time dilation and scheduling inefficiency vs. BudgetRatio |
//! | `table4`   | Table 4 — worst-case vs. empirical computational complexity (LMS fits) |
//! | `ablation` | beyond-the-paper ablations: simple vs. complex reservation tables, VLIW vs. conservative delay model, MinDist vs. circuit-enumeration RecMII |
//! | `unroll_comparison` | the §4.3 baseline: unroll-before-scheduling vs. modulo scheduling |
//! | `registers` | register-pressure extension: MVE unroll factors and rotating-file sizes |
//! | `bench_scheduler` | std-only micro-benchmarks of the full scheduling pipeline ([`micro`]), including corpus-scheduling throughput across thread counts |
//! | `bench_mii` | std-only micro-benchmarks of the MII bounds and HeightR ([`micro`]) |
//! | `corpus`   | the parallel corpus-scheduling driver: JSON-line per-loop results, byte-identical across `--threads` values |
//! | `trace_report` | per-loop convergence reports rendered from a `--trace` directory |
//! | `optgap`   | the optimality-gap harness: exact branch-and-bound vs. the BudgetRatio sweep |
//! | `profile_report` | human-readable tables rendered from a `BENCH_<name>.json` profile snapshot |
//! | `benchdiff` | compares two profile snapshots under per-phase thresholds; nonzero exit on regression |
//!
//! This library holds the shared machinery: [`measure_corpus_threads`]
//! fans the modulo scheduler out over the std-only worker pool in
//! [`pool`] and collects, per loop, every quantity the paper reports;
//! [`corpus_jsonl`] renders a run as deterministic JSON lines. All the
//! corpus binaries accept `--threads N` (default: one worker per core)
//! and `--trace DIR`, which additionally writes one JSON-lines event
//! trace per loop via [`measure_corpus_traced`] — byte-identical across
//! thread counts, inspectable with `trace_report`. The corpus drivers
//! (`corpus`, `optgap`, `table3`, `table4`) also accept `--profile FILE`,
//! which measures every pipeline phase via [`profile`] and writes a
//! versioned `BENCH_<name>.json` snapshot whose deterministic sections
//! are byte-identical across thread counts; compare snapshots with
//! `benchdiff` and render them with `profile_report`.

use ims_codegen::{allocate_rotating, lifetimes};
use ims_core::{
    height_r, list_schedule, BackendKind, Counters, NullObserver, Problem, SchedConfig,
    SchedObserver, SchedOutcome, ScheduleError, Scheduler,
};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_exact::{schedule_exact, ExactConfig};
use ims_graph::sccs;
use ims_sat::{schedule_sat, SatConfig};
use ims_loopgen::{Corpus, CorpusLoop, Profile};
use ims_machine::MachineModel;
use ims_press::{shapes_from_body, PressureModel, PressureObserver};
use ims_trace::TraceWriter;

pub mod micro;
pub mod profile;

/// The deterministic worker pool now lives in `ims-serve` (the scheduling
/// service shares it with the harness); re-exported here so the bench
/// binaries and downstream users keep their `ims_bench::pool` paths.
pub use ims_serve::pool;

/// Deterministic stand-in for a wall-clock deadline in the harness
/// paths: `--deadline-ms N` is converted to a branch-and-bound node
/// budget of `N × NODES_PER_MS`, so two runs (and any `--threads` value)
/// abort the exact search at exactly the same point. Calibrated on the
/// default corpus's hardest loop: one node — a placement plus its window
/// recomputation and memo probe — costs ~2 µs in a release build.
pub const NODES_PER_MS: u64 = 500;

/// The node budget equivalent of a `--deadline-ms` value (`None` —
/// unlimited — for 0).
pub fn node_budget_for_ms(deadline_ms: u64) -> Option<u64> {
    (deadline_ms > 0).then(|| deadline_ms.saturating_mul(NODES_PER_MS))
}

/// [`NODES_PER_MS`]'s counterpart for the SAT backend: `--deadline-ms N`
/// becomes a CDCL conflict budget of `N × CONFLICTS_PER_MS`. A conflict —
/// analysis, clause learning, backjumping, and the propagation leading to
/// it — costs ~20 µs in a release build on the default corpus, orders of
/// magnitude more than a branch-and-bound node.
pub const CONFLICTS_PER_MS: u64 = 50;

/// The conflict budget equivalent of a `--deadline-ms` value (`None` —
/// unlimited — for 0).
pub fn conflict_budget_for_ms(deadline_ms: u64) -> Option<u64> {
    (deadline_ms > 0).then(|| deadline_ms.saturating_mul(CONFLICTS_PER_MS))
}

/// What the exact backend proved about one loop (absent from
/// iterative-backend measurements).
#[derive(Debug, Clone, Copy)]
pub struct ExactInfo {
    /// Largest II proven to lower-bound the true minimum.
    pub proved_lb: i64,
    /// Smallest II with a schedule in hand (the measurement's `ii`).
    pub best_ub: i64,
    /// Branch-and-bound nodes spent.
    pub nodes: u64,
    /// Whether the node budget aborted the search before every candidate
    /// II was decided.
    pub limit_hit: bool,
}

/// What the pressure-aware run measured about one loop (absent from
/// pressure-blind measurements).
#[derive(Debug, Clone, Copy)]
pub struct PressInfo {
    /// The register-file capacity the run scheduled against.
    pub limit: u32,
    /// Whether a schedule satisfying the limit was found. When `false`
    /// the base fields describe the pressure-**blind** fallback schedule
    /// (so the line still reports an II), and `max_live`/`rot_size` show
    /// how far that fallback overshoots the file.
    pub ok: bool,
    /// MaxLive of the reported schedule.
    pub max_live: u32,
    /// Rotating register-file size allocated for the reported schedule
    /// (inter-writer gaps can push this above `max_live`).
    pub rot_size: usize,
}

/// Everything the paper measures about one scheduled loop.
#[derive(Debug, Clone)]
pub struct LoopMeasurement {
    /// Number of operations `N` (excluding START/STOP).
    pub n_ops: usize,
    /// Number of dependence edges `E` (excluding START/STOP scaffolding).
    pub n_edges: usize,
    /// Resource-constrained MII.
    pub res_mii: i64,
    /// Recurrence-constrained MII, reported as `max(ResMII, RecMII)` (the
    /// production-compiler formulation — `rec_mii − res_mii` is then
    /// exactly Table 3's `max(0, RecMII − ResMII)`).
    pub rec_mii: i64,
    /// `MII = max(ResMII, RecMII)`.
    pub mii: i64,
    /// The achieved initiation interval.
    pub ii: i64,
    /// Achieved schedule length (the STOP time).
    pub schedule_length: i64,
    /// Lower bound on the schedule length at the achieved II:
    /// `max(MinDist[START, STOP], list-schedule length)` (§4.2).
    pub schedule_length_lower: i64,
    /// Number of non-trivial SCCs (more than one operation).
    pub non_trivial_sccs: usize,
    /// Size of every SCC over the real operations.
    pub scc_sizes: Vec<usize>,
    /// Operation-scheduling steps in the successful attempt.
    pub final_steps: u64,
    /// Operation-scheduling steps across all II attempts.
    pub total_steps: u64,
    /// The per-loop instrumentation counters (Table 4). All-zero for the
    /// exact backend, whose work is counted in [`ExactInfo::nodes`].
    pub counters: Counters,
    /// The loop's synthetic execution profile.
    pub profile: Profile,
    /// Wall-clock time spent scheduling this loop. Excluded from the
    /// default JSON rendering (timings are non-deterministic); opt in
    /// with the corpus driver's `--wall` flag.
    pub wall_ns: u64,
    /// Exact-backend bounds; `None` for the iterative backend.
    pub exact: Option<ExactInfo>,
    /// Register-pressure results; `None` outside `--pressure-limit` runs.
    pub press: Option<PressInfo>,
}

impl LoopMeasurement {
    /// §4.3's execution-time formula:
    /// `EntryFreq·SL + (LoopFreq − EntryFreq)·II`.
    pub fn execution_time(&self) -> u64 {
        self.profile.entry_freq * self.schedule_length as u64
            + (self.profile.loop_freq - self.profile.entry_freq) * self.ii as u64
    }

    /// The corresponding lower bound, using the schedule-length lower bound
    /// and the MII.
    pub fn execution_time_lower(&self) -> u64 {
        self.profile.entry_freq * self.schedule_length_lower as u64
            + (self.profile.loop_freq - self.profile.entry_freq) * self.mii as u64
    }

    /// `DeltaII = II − MII`.
    pub fn delta_ii(&self) -> i64 {
        self.ii - self.mii
    }
}

/// Schedules one corpus loop and extracts every measurement.
///
/// # Panics
///
/// Panics if the scheduler fails to find any schedule (impossible for
/// well-formed corpus loops with the automatic II cap).
pub fn measure_loop(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
) -> LoopMeasurement {
    measure_loop_observed(l, machine, budget_ratio, &mut NullObserver)
}

/// [`measure_loop`] with a caller-supplied [`SchedObserver`] watching the
/// scheduler's decisions. `measure_loop` is exactly this with
/// [`NullObserver`], so the untraced path pays nothing for the hook.
pub fn measure_loop_observed<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
    observer: &mut O,
) -> LoopMeasurement {
    // The paper's corpus was dumped "after load-store elimination,
    // recurrence back-substitution and IF-conversion" (§4.1); apply the
    // same preprocessing.
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    let t0 = std::time::Instant::now();
    let outcome: SchedOutcome = Scheduler::new(&problem)
        .config(SchedConfig::new().budget_ratio(budget_ratio))
        .observer(observer)
        .run()
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let mut m = finish_measurement(&problem, l, outcome.mii.res_mii, outcome.mii.rec_mii,
        outcome.mii.mii, &outcome.schedule);
    m.final_steps = outcome.stats.final_steps();
    m.total_steps = outcome.stats.total_steps();
    m.counters = outcome.stats.counters;
    m.wall_ns = wall_ns;
    m
}

/// Schedules one corpus loop with the **exact** backend: the iterative
/// scheduler provides the upper bound, then branch-and-bound decides
/// every smaller II under `config`'s node budget. `final_steps` /
/// `total_steps` count branch-and-bound nodes, the Table 4 counters are
/// zero, and [`LoopMeasurement::exact`] carries the proven bounds.
///
/// # Panics
///
/// Panics if the internal iterative run fails (impossible for well-formed
/// corpus loops with the automatic II cap).
pub fn measure_loop_exact(
    l: &CorpusLoop,
    machine: &MachineModel,
    config: &ExactConfig,
) -> LoopMeasurement {
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    let t0 = std::time::Instant::now();
    let out = schedule_exact(&problem, config)
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let mut m = finish_measurement(&problem, l, out.mii.res_mii, out.mii.rec_mii, out.mii.mii,
        &out.schedule);
    m.final_steps = out.nodes;
    m.total_steps = out.nodes;
    m.wall_ns = wall_ns;
    m.exact = Some(ExactInfo {
        proved_lb: out.bounds.proved_lb,
        best_ub: out.bounds.best_ub,
        nodes: out.nodes,
        limit_hit: out.limit_hit,
    });
    m
}

/// Schedules one corpus loop with the **SAT** backend: the iterative
/// scheduler provides the upper bound, then the CDCL encoding decides
/// every smaller II under `config`'s conflict budget. `final_steps` /
/// `total_steps` count CDCL conflicts, the Table 4 counters are zero,
/// and [`LoopMeasurement::exact`] carries the proven bounds (with
/// [`ExactInfo::nodes`] holding conflicts).
///
/// # Panics
///
/// Panics if the internal iterative run fails (impossible for well-formed
/// corpus loops with the automatic II cap).
pub fn measure_loop_sat(
    l: &CorpusLoop,
    machine: &MachineModel,
    config: &SatConfig,
) -> LoopMeasurement {
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    let t0 = std::time::Instant::now();
    let out = schedule_sat(&problem, config)
        .expect("corpus loops always schedule under the automatic II cap");
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let mut m = finish_measurement(&problem, l, out.mii.res_mii, out.mii.rec_mii, out.mii.mii,
        &out.schedule);
    m.final_steps = out.conflicts;
    m.total_steps = out.conflicts;
    m.wall_ns = wall_ns;
    m.exact = Some(ExactInfo {
        proved_lb: out.bounds.proved_lb,
        best_ub: out.bounds.best_ub,
        nodes: out.conflicts,
        limit_hit: out.limit_hit,
    });
    m
}

/// Schedules one corpus loop **register-pressure-aware**: a
/// [`PressureObserver`] vetoes placements and rejects attempts whose
/// MaxLive (or rotating allocation) exceeds `limit`, so an accepted
/// schedule is known to fit a rotating file of `limit` registers.
///
/// When even the II cap cannot satisfy the limit
/// ([`ScheduleError::PressureInfeasible`]), the measurement falls back to
/// the pressure-blind schedule — the line still reports an II — with
/// [`PressInfo::ok`] `false` and the blind schedule's (over-limit)
/// pressure in `max_live`/`rot_size`.
///
/// # Panics
///
/// Panics if the pressure-blind fallback itself fails to schedule
/// (impossible for well-formed corpus loops with the automatic II cap).
pub fn measure_loop_pressure(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
    limit: u32,
) -> LoopMeasurement {
    measure_loop_pressure_observed(l, machine, budget_ratio, limit, &mut NullObserver)
}

/// [`measure_loop_pressure`] with an extra caller-supplied observer (the
/// profiling wrapper) watching the same run as the pressure observer.
pub fn measure_loop_pressure_observed<O: SchedObserver>(
    l: &CorpusLoop,
    machine: &MachineModel,
    budget_ratio: f64,
    limit: u32,
    extra: &mut O,
) -> LoopMeasurement {
    let body = back_substitute(&l.body, machine);
    let problem = build_problem(&body, machine, &BuildOptions::default());
    let t0 = std::time::Instant::now();
    let run = schedule_pressure(&body, &problem, budget_ratio, limit, extra);
    let wall_ns = t0.elapsed().as_nanos() as u64;

    let mut m = finish_measurement(&problem, l, run.outcome.mii.res_mii,
        run.outcome.mii.rec_mii, run.outcome.mii.mii, &run.outcome.schedule);
    m.final_steps = run.outcome.stats.final_steps();
    m.total_steps = run.outcome.stats.total_steps();
    m.counters = run.outcome.stats.counters;
    m.wall_ns = wall_ns;
    m.press = Some(run.press);
    m
}

/// The outcome of one pressure-aware scheduling run: the reported
/// schedule (the pressure-aware one, or the pressure-blind fallback on
/// infeasibility), its pressure verdict, and the `press.*` work counts.
pub(crate) struct PressRun {
    pub(crate) outcome: SchedOutcome,
    pub(crate) press: PressInfo,
    /// `press.maxlive.updates` — lifetime-interval updates performed.
    pub(crate) updates: u64,
    /// `press.rejects` — placements vetoed over the limit.
    pub(crate) rejects: u64,
    /// `press.ii_bumps` — completed attempts rejected for pressure.
    pub(crate) ii_bumps: u64,
}

/// The shared core of the pressure-aware measurement paths (plain and
/// profiled): schedules `problem` under `limit` with a
/// [`PressureObserver`] (and `extra` in tandem), falling back to the
/// pressure-blind schedule — flagged `ok: false`, with its over-limit
/// pressure reported — on [`ScheduleError::PressureInfeasible`].
pub(crate) fn schedule_pressure<O: SchedObserver>(
    body: &ims_ir::LoopBody,
    problem: &Problem<'_>,
    budget_ratio: f64,
    limit: u32,
    extra: &mut O,
) -> PressRun {
    let mut obs = PressureObserver::for_body(body, problem, limit);
    let result = Scheduler::new(problem)
        .config(
            SchedConfig::new()
                .budget_ratio(budget_ratio)
                .pressure_limit(limit),
        )
        .observer(Tandem(&mut obs, extra))
        .run();
    match result {
        Ok(outcome) => {
            let lts = lifetimes(body, problem, &outcome.schedule);
            let rot = allocate_rotating(body, &lts, outcome.schedule.ii);
            PressRun {
                press: PressInfo {
                    limit,
                    ok: true,
                    max_live: obs.max_live(),
                    rot_size: rot.size,
                },
                updates: obs.updates(),
                rejects: obs.rejects(),
                ii_bumps: obs.ii_bumps(),
                outcome,
            }
        }
        Err(ScheduleError::PressureInfeasible { .. }) => {
            // Report the pressure-blind schedule so the measurement still
            // has an II, flagged infeasible with its actual pressure.
            let outcome: SchedOutcome = Scheduler::new(problem)
                .config(SchedConfig::new().budget_ratio(budget_ratio))
                .observer(&mut *extra)
                .run()
                .expect("corpus loops always schedule under the automatic II cap");
            let mut model = PressureModel::new(
                shapes_from_body(body, problem),
                problem.graph().num_nodes(),
                1,
            );
            model.load_schedule(&outcome.schedule);
            let lts = lifetimes(body, problem, &outcome.schedule);
            let rot = allocate_rotating(body, &lts, outcome.schedule.ii);
            PressRun {
                press: PressInfo {
                    limit,
                    ok: false,
                    max_live: model.max_live(),
                    rot_size: rot.size,
                },
                updates: obs.updates() + model.updates(),
                rejects: obs.rejects(),
                ii_bumps: obs.ii_bumps(),
                outcome,
            }
        }
        Err(e) => {
            panic!("corpus loops always schedule under the automatic II cap: {e}")
        }
    }
}

/// Fans [`measure_loop_pressure`] out over the worker pool; results in
/// corpus order, byte-identical for every thread count.
pub fn measure_corpus_pressure(
    corpus: &Corpus,
    machine: &MachineModel,
    budget_ratio: f64,
    limit: u32,
    threads: usize,
) -> Vec<LoopMeasurement> {
    pool::par_map(&corpus.loops, threads, |_, l| {
        measure_loop_pressure(l, machine, budget_ratio, limit)
    })
}

/// Broadcasts every scheduler event to two observers. The consulted
/// hooks are combined the strict way: a placement stands only if
/// *neither* observer vetoes it, an attempt only if *both* accept —
/// with `B = NullObserver` this is exactly `A` alone.
struct Tandem<'a, A, B>(&'a mut A, &'a mut B);

impl<A: SchedObserver, B: SchedObserver> SchedObserver for Tandem<'_, A, B> {
    fn backend(&mut self, kind: BackendKind) {
        self.0.backend(kind);
        self.1.backend(kind);
    }

    fn attempt_start(&mut self, ii: i64, budget: i64) {
        self.0.attempt_start(ii, budget);
        self.1.attempt_start(ii, budget);
    }

    fn op_scheduled(&mut self, node: ims_graph::NodeId, time: i64, alt: usize, forced: bool) {
        self.0.op_scheduled(node, time, alt, forced);
        self.1.op_scheduled(node, time, alt, forced);
    }

    fn op_evicted(&mut self, node: ims_graph::NodeId, evictor: ims_graph::NodeId) {
        self.0.op_evicted(node, evictor);
        self.1.op_evicted(node, evictor);
    }

    fn slot_search(&mut self, node: ims_graph::NodeId, estart: i64, iters: u32) {
        self.0.slot_search(node, estart, iters);
        self.1.slot_search(node, estart, iters);
    }

    fn estart_computed(&mut self, node: ims_graph::NodeId, preds: u32) {
        self.0.estart_computed(node, preds);
        self.1.estart_computed(node, preds);
    }

    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        self.0.budget_exhausted(ii, spent);
        self.1.budget_exhausted(ii, spent);
    }

    fn attempt_done(&mut self, ii: i64, ok: bool) {
        self.0.attempt_done(ii, ok);
        self.1.attempt_done(ii, ok);
    }

    fn placement_vetoed(&mut self, node: ims_graph::NodeId, time: i64) -> bool {
        // No short-circuit: both observers see every probe.
        let a = self.0.placement_vetoed(node, time);
        let b = self.1.placement_vetoed(node, time);
        a || b
    }

    fn attempt_accept(&mut self, ii: i64, schedule: &ims_core::Schedule) -> bool {
        let a = self.0.attempt_accept(ii, schedule);
        let b = self.1.attempt_accept(ii, schedule);
        a && b
    }
}

/// The backend-independent tail of a loop measurement: SCC statistics and
/// the schedule-length lower bound, packaged with the schedule's
/// quantities. Work counters are left zero for the caller to fill.
fn finish_measurement(
    problem: &Problem<'_>,
    l: &CorpusLoop,
    res_mii: i64,
    rec_mii: i64,
    mii: i64,
    schedule: &ims_core::Schedule,
) -> LoopMeasurement {
    // SCC statistics over real operations only (START/STOP would otherwise
    // show up as two extra trivial components).
    let mut scc_work = 0u64;
    let info = sccs(problem.graph(), &mut scc_work);
    let scc_sizes: Vec<usize> = info
        .components
        .iter()
        .map(|c| {
            c.iter()
                .filter(|n| **n != problem.start() && **n != problem.stop())
                .count()
        })
        .filter(|&s| s > 0)
        .collect();
    let non_trivial_sccs = scc_sizes.iter().filter(|&&s| s > 1).count();

    // Schedule-length lower bound at the achieved II (§4.2):
    // HeightR(START) equals MinDist[START, STOP]. The paper's second
    // component, the acyclic list-schedule length, is itself a heuristic
    // and can exceed the modulo schedule length on complex reservation
    // tables, so it is clamped at the achieved length (otherwise the
    // "ratio to the lower bound" could dip below 1).
    let mut c = Counters::new();
    let heights = height_r(problem, schedule.ii, &mut c);
    let min_dist_bound = heights[problem.start().index()];
    let list_len = list_schedule(problem).length.min(schedule.length);

    LoopMeasurement {
        n_ops: problem.num_ops(),
        n_edges: problem.num_real_edges(),
        res_mii,
        rec_mii,
        mii,
        ii: schedule.ii,
        schedule_length: schedule.length,
        schedule_length_lower: min_dist_bound.max(list_len),
        non_trivial_sccs,
        scc_sizes,
        final_steps: 0,
        total_steps: 0,
        counters: Counters::new(),
        profile: l.profile,
        wall_ns: 0,
        exact: None,
        press: None,
    }
}

/// Runs the scheduler over a whole corpus, sequentially (the
/// deterministic baseline; see [`measure_corpus_threads`]).
pub fn measure_corpus(
    corpus: &Corpus,
    machine: &MachineModel,
    budget_ratio: f64,
) -> Vec<LoopMeasurement> {
    measure_corpus_threads(corpus, machine, budget_ratio, 1)
}

/// Runs the scheduler over a whole corpus on `threads` worker threads.
///
/// Each loop is an independent scheduling problem, so the corpus fans out
/// over the std-only worker pool in [`pool`]; results come back in corpus
/// order, so the returned measurements — and anything rendered from them,
/// e.g. [`corpus_jsonl`] — are identical for every thread count.
pub fn measure_corpus_threads(
    corpus: &Corpus,
    machine: &MachineModel,
    budget_ratio: f64,
    threads: usize,
) -> Vec<LoopMeasurement> {
    pool::par_map(&corpus.loops, threads, |_, l| {
        measure_loop(l, machine, budget_ratio)
    })
}

/// [`measure_corpus_threads`] with a selectable backend. The iterative
/// backend ignores `work_limit`; the exact backends ignore nothing —
/// `budget_ratio` configures their internal heuristic run and
/// `work_limit` their search budget (branch-and-bound nodes for `exact`,
/// CDCL conflicts for `sat` — both deterministic, unlike a wall-clock
/// deadline, so stdout stays byte-identical across thread counts).
pub fn measure_corpus_backend(
    corpus: &Corpus,
    machine: &MachineModel,
    backend: BackendKind,
    budget_ratio: f64,
    work_limit: Option<u64>,
    threads: usize,
) -> Vec<LoopMeasurement> {
    match backend {
        BackendKind::Ims => measure_corpus_threads(corpus, machine, budget_ratio, threads),
        BackendKind::Exact => {
            let config = ExactConfig::new()
                .heuristic(SchedConfig::with_budget_ratio(budget_ratio))
                .node_limit(work_limit);
            pool::par_map(&corpus.loops, threads, |_, l| {
                measure_loop_exact(l, machine, &config)
            })
        }
        BackendKind::Sat => {
            let config = SatConfig::new()
                .heuristic(SchedConfig::with_budget_ratio(budget_ratio))
                .conflict_limit(work_limit);
            pool::par_map(&corpus.loops, threads, |_, l| {
                measure_loop_sat(l, machine, &config)
            })
        }
    }
}

/// [`measure_corpus_threads`] plus per-loop event traces.
///
/// When `trace_dir` is `None` this is exactly the untraced run. Otherwise
/// each worker streams its loop's events into an in-memory
/// [`TraceWriter`], and after the in-order merge the traces are written
/// as `<prefix>loop_<index:05>.jsonl` under `trace_dir` (created if
/// missing). Because the events carry no timestamps or thread identity
/// and the files are named by corpus index, the trace directory is
/// byte-identical for every `threads` value — `scripts/verify.sh` diffs
/// a slice at `--threads 1` vs `--threads 4` on every run.
pub fn measure_corpus_traced(
    corpus: &Corpus,
    machine: &MachineModel,
    budget_ratio: f64,
    threads: usize,
    trace_dir: Option<&std::path::Path>,
    prefix: &str,
) -> std::io::Result<Vec<LoopMeasurement>> {
    let Some(dir) = trace_dir else {
        return Ok(measure_corpus_threads(corpus, machine, budget_ratio, threads));
    };
    std::fs::create_dir_all(dir)?;
    let traced = pool::par_map(&corpus.loops, threads, |_, l| {
        let mut tracer = TraceWriter::in_memory();
        let m = measure_loop_observed(l, machine, budget_ratio, &mut tracer);
        (m, tracer.into_string())
    });
    let mut ms = Vec::with_capacity(traced.len());
    for (index, (m, trace)) in traced.into_iter().enumerate() {
        std::fs::write(dir.join(format!("{prefix}loop_{index:05}.jsonl")), trace)?;
        ms.push(m);
    }
    Ok(ms)
}

/// Extracts `--trace DIR` (or `--trace=DIR`) from a raw argv slice, the
/// way the corpus binaries share [`pool::parse_threads`].
pub fn parse_trace_dir(args: &[String]) -> Option<std::path::PathBuf> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--trace" {
            return it.next().map(std::path::PathBuf::from);
        }
        if let Some(v) = a.strip_prefix("--trace=") {
            return Some(std::path::PathBuf::from(v));
        }
    }
    None
}

/// Renders one corpus loop's measurement as a deterministic JSON line:
/// every per-loop quantity the paper reports (II, ΔII, schedule length,
/// scheduling steps, the Table 4 work counters) and nothing
/// non-deterministic — no timings, no thread identity — so corpus runs at
/// different thread counts produce byte-identical output.
pub fn measurement_json_line(index: usize, m: &LoopMeasurement) -> String {
    measurement_json_line_opts(index, m, false)
}

/// [`measurement_json_line`] with opt-in extras: `with_wall` appends the
/// (non-deterministic) `wall_ns` timing, exact-backend measurements
/// always append their `proved_lb`/`best_ub`/`limit_hit` bounds, and
/// pressure-aware measurements always append their
/// `press_limit`/`press_ok`/`max_live`/`rot_size` verdict — the plain
/// iterative backend's lines are byte-unchanged.
pub fn measurement_json_line_opts(index: usize, m: &LoopMeasurement, with_wall: bool) -> String {
    let mut line = measurement_json_core(index, m);
    if let Some(e) = m.exact {
        line.pop();
        line.push_str(&format!(
            ",\"proved_lb\":{},\"best_ub\":{},\"limit_hit\":{}}}",
            e.proved_lb, e.best_ub, e.limit_hit
        ));
    }
    if let Some(p) = m.press {
        line.pop();
        line.push_str(&format!(
            ",\"press_limit\":{},\"press_ok\":{},\"max_live\":{},\"rot_size\":{}}}",
            p.limit, p.ok, p.max_live, p.rot_size
        ));
    }
    if with_wall {
        line.pop();
        line.push_str(&format!(",\"wall_ns\":{}}}", m.wall_ns));
    }
    line
}

fn measurement_json_core(index: usize, m: &LoopMeasurement) -> String {
    let c = &m.counters;
    format!(
        "{{\"loop\":{index},\"ops\":{},\"edges\":{},\"res_mii\":{},\"rec_mii\":{},\
         \"mii\":{},\"ii\":{},\"delta_ii\":{},\"length\":{},\"length_lower\":{},\
         \"final_steps\":{},\"total_steps\":{},\"scc_work\":{},\"resmii_work\":{},\
         \"mindist_work\":{},\"heightr_work\":{},\"estart_preds\":{},\
         \"findslot_iters\":{},\"evictions\":{},\"mrt_probes\":{}}}",
        m.n_ops,
        m.n_edges,
        m.res_mii,
        m.rec_mii,
        m.mii,
        m.ii,
        m.delta_ii(),
        m.schedule_length,
        m.schedule_length_lower,
        m.final_steps,
        m.total_steps,
        c.scc_work,
        c.resmii_work,
        c.mindist_work,
        c.heightr_work,
        c.estart_preds,
        c.findslot_iters,
        c.evictions,
        c.mrt_probes,
    )
}

/// Renders a whole corpus run as JSON lines (one line per loop, in corpus
/// order) followed by one aggregate line summing the deterministic
/// quantities. Byte-identical across thread counts by construction.
pub fn corpus_jsonl(ms: &[LoopMeasurement]) -> String {
    corpus_jsonl_opts(ms, false)
}

/// [`corpus_jsonl`] with opt-in `wall_ns` per line. When any measurement
/// carries exact bounds, the aggregate line additionally reports how many
/// loops were proven optimal, the summed proven gap, and how many
/// searches hit their node budget.
pub fn corpus_jsonl_opts(ms: &[LoopMeasurement], with_wall: bool) -> String {
    let mut out = String::with_capacity(ms.len() * 200);
    let mut total = Counters::new();
    let (mut steps, mut ops, mut delta) = (0u64, 0usize, 0i64);
    for (i, m) in ms.iter().enumerate() {
        out.push_str(&measurement_json_line_opts(i, m, with_wall));
        out.push('\n');
        total.add(&m.counters);
        steps += m.total_steps;
        ops += m.n_ops;
        delta += m.delta_ii();
    }
    let mut agg = format!(
        "{{\"loops\":{},\"ops\":{ops},\"total_steps\":{steps},\"sum_delta_ii\":{delta},\
         \"mindist_work\":{},\"findslot_iters\":{},\"evictions\":{},\"mrt_probes\":{}}}",
        ms.len(),
        total.mindist_work,
        total.findslot_iters,
        total.evictions,
        total.mrt_probes,
    );
    if ms.iter().any(|m| m.exact.is_some()) {
        let exact: Vec<ExactInfo> = ms.iter().filter_map(|m| m.exact).collect();
        let proven = exact.iter().filter(|e| e.proved_lb == e.best_ub).count();
        let gap: i64 = exact.iter().map(|e| e.best_ub - e.proved_lb).sum();
        let limit_hits = exact.iter().filter(|e| e.limit_hit).count();
        agg.pop();
        agg.push_str(&format!(
            ",\"proven_optimal\":{proven},\"open_gap\":{gap},\"limit_hits\":{limit_hits}}}"
        ));
    }
    if let Some(first) = ms.iter().find_map(|m| m.press) {
        let press: Vec<PressInfo> = ms.iter().filter_map(|m| m.press).collect();
        let fit = press.iter().filter(|p| p.ok).count();
        let infeasible = press.len() - fit;
        let sum_max_live: u64 = press.iter().map(|p| p.max_live as u64).sum();
        let peak_max_live = press.iter().map(|p| p.max_live).max().unwrap_or(0);
        agg.pop();
        agg.push_str(&format!(
            ",\"press_limit\":{},\"press_fit\":{fit},\"press_infeasible\":{infeasible},\
             \"sum_max_live\":{sum_max_live},\"peak_max_live\":{peak_max_live}}}",
            first.limit
        ));
    }
    out.push_str(&agg);
    out.push('\n');
    out
}

/// Aggregate Figure 6 quantities over a set of measurements:
/// `(execution-time dilation, scheduling inefficiency)`.
///
/// Dilation is `(Σ exec_time / Σ exec_time_lower) − 1` over executed loops;
/// inefficiency is `Σ total_steps / Σ N` over all loops.
pub fn aggregate_figure6(ms: &[LoopMeasurement]) -> (f64, f64) {
    let (mut t, mut tl) = (0u64, 0u64);
    for m in ms.iter().filter(|m| m.profile.executed) {
        t += m.execution_time();
        tl += m.execution_time_lower();
    }
    let dilation = if tl == 0 { 0.0 } else { t as f64 / tl as f64 - 1.0 };
    let steps: u64 = ms.iter().map(|m| m.total_steps).sum();
    let ops: usize = ms.iter().map(|m| m.n_ops).sum();
    let inefficiency = if ops == 0 { 0.0 } else { steps as f64 / ops as f64 };
    (dilation, inefficiency)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_loopgen::corpus_of_size;
    use ims_machine::cydra;

    #[test]
    fn small_corpus_measures_cleanly() {
        let corpus = corpus_of_size(5, 40);
        let ms = measure_corpus(&corpus, &cydra(), 6.0);
        assert_eq!(ms.len(), 40);
        for m in &ms {
            assert!(m.ii >= m.mii, "II below MII");
            assert!(m.mii >= m.res_mii);
            assert!(m.rec_mii >= m.res_mii); // seeded formulation
            assert!(m.schedule_length >= m.schedule_length_lower);
            assert!(m.final_steps >= m.n_ops as u64);
            assert!(m.total_steps >= m.final_steps);
            assert!(m.execution_time() >= m.execution_time_lower());
        }
    }

    #[test]
    fn figure6_aggregates_are_sane() {
        let corpus = corpus_of_size(6, 30);
        let ms = measure_corpus(&corpus, &cydra(), 6.0);
        let (dilation, ineff) = aggregate_figure6(&ms);
        assert!(dilation >= 0.0);
        assert!(ineff >= 1.0, "each op is scheduled at least once: {ineff}");
    }

    #[test]
    fn exact_backend_measurements_carry_bounds() {
        let corpus = corpus_of_size(5, 12);
        let machine = cydra();
        let ims = measure_corpus_backend(&corpus, &machine, BackendKind::Ims, 6.0, None, 2);
        let exact =
            measure_corpus_backend(&corpus, &machine, BackendKind::Exact, 6.0, Some(200_000), 2);
        for (i, e) in ims.iter().zip(&exact) {
            assert!(i.exact.is_none());
            let b = e.exact.expect("exact measurements carry bounds");
            assert!(b.proved_lb <= b.best_ub);
            assert_eq!(e.ii, b.best_ub, "the measured II is the best in hand");
            assert!(e.mii <= e.ii);
            assert!(e.ii <= i.ii, "exact never does worse than the heuristic");
            if !b.limit_hit {
                assert_eq!(b.proved_lb, b.best_ub, "a completed search is exact");
            }
        }

        // Exact lines grow bounds fields; iterative lines are unchanged.
        let line = measurement_json_line_opts(0, &exact[0], false);
        assert!(line.contains("\"proved_lb\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert_eq!(
            measurement_json_line(0, &ims[0]),
            measurement_json_line_opts(0, &ims[0], false)
        );
        assert!(!measurement_json_line(0, &ims[0]).contains("wall_ns"));
        let timed = measurement_json_line_opts(0, &ims[0], true);
        assert!(timed.contains("\"wall_ns\":"), "{timed}");
        let agg = corpus_jsonl_opts(&exact, false);
        assert!(agg.contains("\"proven_optimal\":"), "{agg}");
    }

    #[test]
    fn pressure_runs_fit_or_flag_infeasibility() {
        let corpus = corpus_of_size(9, 12);
        let machine = ims_machine::cydra_rf(16);
        let limit = machine.register_file().expect("cydra_rf declares a file");
        let blind = measure_corpus_threads(&corpus, &machine, 6.0, 2);
        let aware = pool::par_map(&corpus.loops, 2, |_, l| {
            measure_loop_pressure(l, &machine, 6.0, limit)
        });
        let mut fits = 0;
        for (b, a) in blind.iter().zip(&aware) {
            assert!(b.press.is_none());
            let p = a.press.expect("pressure measurements carry a verdict");
            assert_eq!(p.limit, limit);
            if p.ok {
                fits += 1;
                assert!(p.max_live <= limit);
                assert!(p.rot_size <= limit as usize);
                assert!(a.ii >= b.ii, "pressure can only push the II up");
            }
            // Blind lines are byte-unchanged; pressure lines grow fields.
            let line = measurement_json_line_opts(0, a, false);
            assert!(line.contains("\"press_limit\":"), "{line}");
            assert!(!measurement_json_line(0, b).contains("press_limit"));
        }
        assert!(fits > 0, "a 16-register file fits some small loops");
        let agg = corpus_jsonl_opts(&aware, false);
        assert!(agg.contains("\"press_fit\":"), "{agg}");
        assert!(agg.contains("\"peak_max_live\":"), "{agg}");
    }

    #[test]
    fn pressure_corpus_is_thread_invariant() {
        let corpus = corpus_of_size(10, 10);
        let machine = ims_machine::cydra_rf(12);
        let one = measure_corpus_pressure(&corpus, &machine, 6.0, 12, 1);
        let four = measure_corpus_pressure(&corpus, &machine, 6.0, 12, 4);
        assert_eq!(corpus_jsonl(&one), corpus_jsonl(&four));
    }

    #[test]
    fn tighter_budget_never_reduces_ii() {
        let corpus = corpus_of_size(7, 15);
        let gen = measure_corpus(&corpus, &cydra(), 6.0);
        let tight = measure_corpus(&corpus, &cydra(), 1.0);
        for (g, t) in gen.iter().zip(&tight) {
            assert!(t.ii >= g.ii, "a tighter budget cannot improve the II");
        }
    }
}
