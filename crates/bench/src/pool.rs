//! A std-only worker pool for corpus-scale scheduling.
//!
//! The paper's evaluation schedules 1,327 independent loops; nothing about
//! one loop's schedule depends on another's, so the corpus is
//! embarrassingly parallel. [`par_map`] fans a slice out over `threads`
//! scoped `std::thread` workers that pull chunks off a shared atomic
//! cursor (dynamic chunking, so a few expensive loops cannot strand a
//! worker), and reassembles the results **in input order**. Because every
//! result is keyed by its input index before merging, the output is
//! byte-for-byte identical for any thread count — determinism is a
//! property of the merge, not of the OS scheduler.
//!
//! No external dependencies: `std::thread::scope` + `AtomicUsize` only.

use std::sync::atomic::{AtomicUsize, Ordering};

/// How many items a worker claims per visit to the shared cursor. Small
/// enough to balance a skewed corpus (one 163-op loop costs hundreds of
/// 4-op loops), large enough to keep cursor contention negligible.
const CHUNK: usize = 8;

/// The number of worker threads to use when the caller does not specify:
/// [`std::thread::available_parallelism`], clamped to the pool's tested
/// range, or 1 if the platform cannot say.
pub fn default_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .clamp(1, 64)
}

/// Reads a `--threads N` (or `--threads=N`) flag from the process
/// arguments, falling back to [`default_threads`]. Shared by every corpus
/// binary so they all accept the same flag.
pub fn threads_from_args() -> usize {
    let args: Vec<String> = std::env::args().collect();
    parse_threads(&args).unwrap_or_else(default_threads)
}

/// Parses `--threads N` / `--threads=N` out of an argument list.
pub fn parse_threads(args: &[String]) -> Option<usize> {
    let mut it = args.iter();
    while let Some(a) = it.next() {
        if a == "--threads" {
            return it.next()?.parse().ok();
        }
        if let Some(v) = a.strip_prefix("--threads=") {
            return v.parse().ok();
        }
    }
    None
}

/// Applies `f` to every item of `items` using `threads` worker threads and
/// returns the results in input order.
///
/// With `threads <= 1` the map runs inline on the calling thread (no
/// spawn, no atomics) — the deterministic baseline the parallel path must
/// reproduce exactly. `f` receives `(index, &item)` so callers can key
/// per-item state (seeds, labels) off the stable input position rather
/// than off arrival order.
///
/// # Panics
///
/// Propagates a panic from any worker (the scope joins all workers first).
pub fn par_map<T, R, F>(items: &[T], threads: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    if threads <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, x)| f(i, x)).collect();
    }
    let workers = threads.min(items.len());
    let cursor = AtomicUsize::new(0);

    let mut indexed: Vec<(usize, R)> = Vec::with_capacity(items.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local: Vec<(usize, R)> = Vec::new();
                    loop {
                        let lo = cursor.fetch_add(CHUNK, Ordering::Relaxed);
                        if lo >= items.len() {
                            break;
                        }
                        let hi = (lo + CHUNK).min(items.len());
                        for (i, item) in items[lo..hi].iter().enumerate() {
                            local.push((lo + i, f(lo + i, item)));
                        }
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            indexed.extend(handle.join().expect("corpus worker panicked"));
        }
    });

    // The merge re-imposes input order: output is independent of which
    // worker computed what, and therefore of the thread count.
    indexed.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(indexed.len(), items.len());
    indexed.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn results_are_in_input_order_for_every_thread_count() {
        let items: Vec<u64> = (0..203).collect();
        let expect: Vec<u64> = items.iter().map(|x| x * x).collect();
        for threads in [1, 2, 3, 4, 8, 16] {
            let got = par_map(&items, threads, |_, &x| x * x);
            assert_eq!(got, expect, "threads = {threads}");
        }
    }

    #[test]
    fn index_matches_item_position() {
        let items: Vec<usize> = (0..57).collect();
        let got = par_map(&items, 4, |i, &x| (i, x));
        for (i, &(idx, x)) in got.iter().enumerate() {
            assert_eq!(idx, i);
            assert_eq!(x, i);
        }
    }

    #[test]
    fn every_item_is_processed_exactly_once() {
        let calls = AtomicU64::new(0);
        let items: Vec<u8> = vec![0; 100];
        let _ = par_map(&items, 8, |_, _| {
            calls.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(calls.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, 4, |_, &x| x).is_empty());
        assert_eq!(par_map(&[7u32], 4, |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn thread_count_zero_behaves_like_one() {
        let items: Vec<u32> = (0..10).collect();
        assert_eq!(
            par_map(&items, 0, |_, &x| x),
            par_map(&items, 1, |_, &x| x)
        );
    }

    #[test]
    fn default_threads_is_sane() {
        let t = default_threads();
        assert!((1..=64).contains(&t));
    }

    #[test]
    fn threads_flag_parses_both_spellings() {
        let args = |s: &[&str]| s.iter().map(|x| x.to_string()).collect::<Vec<_>>();
        assert_eq!(parse_threads(&args(&["bin", "--threads", "4"])), Some(4));
        assert_eq!(parse_threads(&args(&["bin", "--threads=8"])), Some(8));
        assert_eq!(parse_threads(&args(&["bin"])), None);
        assert_eq!(parse_threads(&args(&["bin", "--threads"])), None);
        assert_eq!(parse_threads(&args(&["bin", "--threads", "x"])), None);
    }
}
