//! End-to-end checks on the parallel corpus driver: the rendered JSON-line
//! output is byte-identical for every thread count, and the incremental
//! ResMII matches a straightforward clone-per-trial reference on a real
//! corpus sample (both in value and in `resmii_work` accounting).

use ims_bench::{corpus_jsonl, measure_corpus_threads};
use ims_core::{res_mii, Counters, Problem};
use ims_deps::{back_substitute, build_problem, BuildOptions};
use ims_graph::NodeId;
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;

#[test]
fn corpus_output_is_byte_identical_across_thread_counts() {
    let machine = cydra();
    let corpus = corpus_of_size(0xBEEF, 60);
    let baseline = corpus_jsonl(&measure_corpus_threads(&corpus, &machine, 6.0, 1));
    assert_eq!(baseline.lines().count(), 61, "60 loops + 1 aggregate line");
    for threads in [2usize, 4, 8] {
        let par = corpus_jsonl(&measure_corpus_threads(&corpus, &machine, 6.0, threads));
        assert_eq!(baseline, par, "output diverged at {threads} threads");
    }
}

/// The pre-optimization ResMII: clones the usage vector for every trial
/// alternative and takes the peak of the whole clone. Kept here as the
/// semantic reference for the incremental implementation in `ims-core`.
fn res_mii_reference(problem: &Problem<'_>, counters: &mut Counters) -> i64 {
    let machine = problem.machine();
    let mut nodes: Vec<NodeId> = problem.op_nodes().collect();
    nodes.sort_by_key(|&n| {
        problem
            .info(n)
            .map(|i| i.alternatives.len())
            .unwrap_or(usize::MAX)
    });
    let mut usage = vec![0u64; machine.num_resources()];
    for node in nodes {
        let info = problem.info(node).expect("op_nodes yields only real ops");
        let mut best: Option<(u64, usize)> = None;
        for (ai, alt) in info.alternatives.iter().enumerate() {
            let mut trial = usage.clone();
            for &(r, _) in alt.table.uses() {
                counters.resmii_work += 1;
                trial[r.index()] += 1;
            }
            let peak = trial.iter().copied().max().unwrap_or(0);
            if best.is_none_or(|(bp, _)| peak < bp) {
                best = Some((peak, ai));
            }
        }
        if let Some((_, ai)) = best {
            for &(r, _) in info.alternatives[ai].table.uses() {
                usage[r.index()] += 1;
            }
        }
    }
    usage.iter().copied().max().unwrap_or(0).max(1) as i64
}

#[test]
fn incremental_res_mii_matches_clone_reference_on_corpus() {
    let machine = cydra();
    let corpus = corpus_of_size(0xC4D5, 50);
    for (i, l) in corpus.loops.iter().enumerate() {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let mut c_inc = Counters::new();
        let mut c_ref = Counters::new();
        let inc = res_mii(&problem, &mut c_inc);
        let reference = res_mii_reference(&problem, &mut c_ref);
        assert_eq!(inc, reference, "ResMII diverged on corpus loop {i}");
        assert_eq!(
            c_inc.resmii_work, c_ref.resmii_work,
            "resmii_work accounting diverged on corpus loop {i}"
        );
    }
}
