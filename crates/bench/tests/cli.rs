//! Exit-code and message contracts of the report/diff binaries:
//! `trace_report` on missing or malformed trace directories, `benchdiff`
//! as a regression gate, and `profile_report` rendering.

use std::path::PathBuf;
use std::process::{Command, Output};

use ims_prof::snapshot::render_snapshot;
use ims_prof::{phase, MetricsRegistry};

fn run(bin: &str, args: &[&str]) -> Output {
    Command::new(bin).args(args).output().expect("binary runs")
}

fn code(out: &Output) -> i32 {
    out.status.code().expect("no signal")
}

fn stderr(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

/// A per-test scratch directory (tests run concurrently in one process).
fn scratch(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ims_cli_{tag}_{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// A baseline-shaped registry with a controllable MinDist counter and
/// wall span, so tests can inject precise regressions.
fn registry(mindist: u64, wall_ns: u64) -> MetricsRegistry {
    let mut reg = MetricsRegistry::new();
    reg.add(phase::GRAPH_MINDIST_WORK, mindist);
    reg.add(phase::SCHED_FINDSLOT_ITERS, 900);
    reg.observe(phase::HIST_SLOT_SEARCH, 3);
    reg.record_wall_ns(phase::WALL_SCHED, wall_ns);
    reg
}

fn write_snapshot(dir: &PathBuf, file: &str, reg: &MetricsRegistry) -> String {
    let path = dir.join(file);
    std::fs::write(&path, render_snapshot("test", reg)).unwrap();
    path.to_string_lossy().into_owned()
}

#[test]
fn trace_report_rejects_a_missing_directory() {
    let out = run(
        env!("CARGO_BIN_EXE_trace_report"),
        &["/nonexistent/ims-trace-dir"],
    );
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn trace_report_summarizes_a_malformed_trace_from_its_prefix() {
    // A damaged trace (e.g. a crashed or truncated run) is summarized
    // from its well-formed prefix — here, zero events — not rejected.
    let dir = scratch("malformed");
    std::fs::write(dir.join("loop_00000.jsonl"), "this is not a trace event\n").unwrap();
    let out = run(env!("CARGO_BIN_EXE_trace_report"), &[dir.to_str().unwrap()]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(stderr(&out).contains("truncated trace"), "{}", stderr(&out));
    assert!(
        stdout(&out).contains("summarized from their well-formed prefix"),
        "{}",
        stdout(&out)
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn trace_report_rejects_an_empty_directory() {
    let dir = scratch("empty");
    let out = run(env!("CARGO_BIN_EXE_trace_report"), &[dir.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("no .jsonl traces"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn benchdiff_usage_errors_exit_2() {
    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("usage"), "{}", stderr(&out));

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &["a.json", "b.json", "--bogus"]);
    assert_eq!(code(&out), 2);

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &["/nonexistent/a.json", "/nonexistent/b.json"]);
    assert_eq!(code(&out), 2);
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));
}

#[test]
fn benchdiff_passes_a_self_compare_and_flags_an_injected_regression() {
    let dir = scratch("diff");
    let base = write_snapshot(&dir, "base.json", &registry(1000, 10_000_000));
    // The issue's acceptance case: MinDist work tripled.
    let worse = write_snapshot(&dir, "worse.json", &registry(3000, 10_000_000));

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &base]);
    assert_eq!(code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("PASS"), "{}", stdout(&out));

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &worse]);
    assert_eq!(code(&out), 1, "a 3x MinDist regression must fail");
    let text = stdout(&out);
    assert!(text.contains("REGRESSION"), "{text}");
    assert!(text.contains(phase::GRAPH_MINDIST_WORK), "{text}");
    assert!(text.contains("FAIL"), "{text}");

    // A generous counter threshold tolerates the same delta.
    let out = run(
        env!("CARGO_BIN_EXE_benchdiff"),
        &[&base, &worse, "--counter-threshold", "4.0"],
    );
    assert_eq!(code(&out), 0, "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn benchdiff_strict_counters_fail_in_both_directions() {
    let dir = scratch("strict");
    let base = write_snapshot(&dir, "base.json", &registry(1000, 10_000_000));
    let better = write_snapshot(&dir, "better.json", &registry(900, 10_000_000));

    // Less deterministic work is an improvement by default...
    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &better]);
    assert_eq!(code(&out), 0, "{}", stdout(&out));
    assert!(stdout(&out).contains("improved"), "{}", stdout(&out));

    // ...but strict mode (the CI baseline gate) demands exact equality.
    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &better, "--strict-counters"]);
    assert_eq!(code(&out), 1, "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn benchdiff_wall_regressions_respect_threshold_and_no_wall() {
    let dir = scratch("wall");
    let base = write_snapshot(&dir, "base.json", &registry(1000, 10_000_000));
    let slower = write_snapshot(&dir, "slower.json", &registry(1000, 30_000_000));

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &slower]);
    assert_eq!(code(&out), 1, "a 3x wall regression past the floor must fail");
    assert!(stdout(&out).contains(phase::WALL_SCHED), "{}", stdout(&out));

    let out = run(env!("CARGO_BIN_EXE_benchdiff"), &[&base, &slower, "--no-wall"]);
    assert_eq!(code(&out), 0, "{}", stdout(&out));

    let out = run(
        env!("CARGO_BIN_EXE_benchdiff"),
        &[&base, &slower, "--wall-threshold", "5.0"],
    );
    assert_eq!(code(&out), 0, "{}", stdout(&out));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn drivers_reject_malformed_threads_values() {
    // A malformed `--threads` must be a hard error (exit 2 + usage), not
    // a silent fallback to the core count: a silently single-threaded
    // bench run skews wall numbers without failing anything. `corpus`
    // parses argv explicitly, `table3` goes through `threads_from_args`;
    // both funnel into the same strict parser.
    for bin in [env!("CARGO_BIN_EXE_corpus"), env!("CARGO_BIN_EXE_table3")] {
        for args in [
            &["--threads", "abc"][..],
            &["--threads=1.5"][..],
            &["--threads", "0"][..],
            &["--threads"][..], // value missing entirely
        ] {
            let out = run(bin, args);
            assert_eq!(code(&out), 2, "{bin} {args:?}");
            let err = stderr(&out);
            assert!(err.contains("usage:"), "{bin} {args:?} -> {err}");
            assert!(err.contains("--threads"), "{bin} {args:?} -> {err}");
            assert!(out.stdout.is_empty(), "no partial output on a bad flag");
        }
    }
}

#[test]
fn corpus_accepts_wellformed_threads() {
    let out = run(env!("CARGO_BIN_EXE_corpus"), &["--threads", "2", "--loops", "1"]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    assert!(!out.stdout.is_empty());
}

#[test]
fn drivers_reject_malformed_backend_values() {
    // A malformed `--backend` is the same hard error as a malformed
    // `--threads`: exit 2 with a usage line naming the flag, never a
    // silent fallback to the default backend. `corpus` and `optgap` both
    // funnel into `pool::backend_or_exit`.
    for bin in [env!("CARGO_BIN_EXE_corpus"), env!("CARGO_BIN_EXE_optgap")] {
        for args in [
            &["--backend", "magic"][..],
            &["--backend=portfolio(ims,"][..],
            &["--backend", "portfolio()"][..],
            &["--backend"][..], // value missing entirely
        ] {
            let out = run(bin, args);
            assert_eq!(code(&out), 2, "{bin} {args:?}");
            let err = stderr(&out);
            assert!(err.contains("usage:"), "{bin} {args:?} -> {err}");
            assert!(err.contains("--backend"), "{bin} {args:?} -> {err}");
            assert!(out.stdout.is_empty(), "no partial output on a bad flag");
        }
    }

    // Well-formed specs can still be wrong for a particular driver:
    // `corpus` measures one backend per loop (no portfolios), and
    // `optgap` needs a prover (no `ims`, alone or inside a portfolio).
    let out = run(
        env!("CARGO_BIN_EXE_corpus"),
        &["--backend", "portfolio(ims,exact)", "--loops", "1"],
    );
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("leaf"), "{}", stderr(&out));

    for spec in ["ims", "portfolio(ims,sat)"] {
        let out = run(env!("CARGO_BIN_EXE_optgap"), &["--backend", spec, "--loops", "1"]);
        assert_eq!(code(&out), 2, "--backend {spec}: {}", stderr(&out));
        assert!(stderr(&out).contains("prove"), "{}", stderr(&out));
    }
}

#[test]
fn corpus_rejects_malformed_pressure_limits() {
    // `--pressure-limit` funnels into `pool::pressure_or_exit`: malformed
    // or zero values are the same hard error as a malformed `--threads`,
    // never a silent "pressure off".
    for args in [
        &["--pressure-limit", "lots"][..],
        &["--pressure-limit=2.5"][..],
        &["--pressure-limit", "0"][..],
        &["--pressure-limit=-4"][..],
        &["--pressure-limit"][..], // value missing entirely
    ] {
        let out = run(env!("CARGO_BIN_EXE_corpus"), args);
        assert_eq!(code(&out), 2, "{args:?}");
        let err = stderr(&out);
        assert!(err.contains("usage:"), "{args:?} -> {err}");
        assert!(err.contains("--pressure-limit"), "{args:?} -> {err}");
        assert!(out.stdout.is_empty(), "no partial output on a bad flag");
    }

    // Well-formed, but only the iterative backend tracks pressure, and a
    // pressure run cannot also stream per-loop traces.
    let out = run(
        env!("CARGO_BIN_EXE_corpus"),
        &["--pressure-limit", "16", "--backend", "exact", "--loops", "1"],
    );
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("--backend ims"), "{}", stderr(&out));
    let out = run(
        env!("CARGO_BIN_EXE_corpus"),
        &["--pressure-limit", "16", "--trace", "/tmp/ims_press_trace", "--loops", "1"],
    );
    assert_eq!(code(&out), 2, "{}", stderr(&out));
    assert!(stderr(&out).contains("--trace"), "{}", stderr(&out));
}

#[test]
fn corpus_pressure_lines_carry_the_verdict() {
    let out = run(
        env!("CARGO_BIN_EXE_corpus"),
        &["--pressure-limit", "16", "--loops", "2", "--threads", "1"],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"press_limit\":16"), "{text}");
    assert!(text.contains("\"press_ok\":"), "{text}");
    assert!(text.contains("\"max_live\":"), "{text}");
    assert!(text.contains("\"press_fit\":"), "aggregate line: {text}");
}

#[test]
fn corpus_accepts_the_sat_backend() {
    let out = run(
        env!("CARGO_BIN_EXE_corpus"),
        &["--backend", "sat", "--loops", "1", "--threads", "1"],
    );
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains("\"proved_lb\":"), "sat lines carry bounds: {text}");
}

#[test]
fn profile_report_renders_and_rejects_bad_input() {
    let dir = scratch("report");
    let snap = write_snapshot(&dir, "snap.json", &registry(1000, 10_000_000));

    let out = run(env!("CARGO_BIN_EXE_profile_report"), &[&snap]);
    assert_eq!(code(&out), 0, "{}", stderr(&out));
    let text = stdout(&out);
    assert!(text.contains(phase::GRAPH_MINDIST_WORK), "{text}");
    assert!(text.contains("MinDist relaxations"), "phase descriptions render: {text}");
    assert!(text.contains("Wall-clock spans"), "{text}");

    let out = run(env!("CARGO_BIN_EXE_profile_report"), &[]);
    assert_eq!(code(&out), 2);

    let out = run(env!("CARGO_BIN_EXE_profile_report"), &["/nonexistent/snap.json"]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("cannot read"), "{}", stderr(&out));

    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    let out = run(env!("CARGO_BIN_EXE_profile_report"), &[bad.to_str().unwrap()]);
    assert_eq!(code(&out), 1);
    assert!(stderr(&out).contains("malformed snapshot"), "{}", stderr(&out));
    std::fs::remove_dir_all(&dir).ok();
}
