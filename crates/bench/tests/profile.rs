//! Profiled corpus measurement: identical measurements and traces, and
//! thread-count-independent deterministic snapshot sections.

use ims_bench::profile::measure_corpus_profiled;
use ims_bench::{corpus_jsonl, measure_corpus_backend, measure_corpus_threads};
use ims_core::BackendKind;
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_prof::snapshot::{deterministic_section, render_snapshot};
use ims_prof::phase;

/// The acceptance gate of the profiler issue: a 60-loop profiled corpus
/// run must produce (a) exactly the measurements of the unprofiled run
/// and (b) snapshot deterministic sections that are byte-identical at
/// `--threads 1` and `--threads 4`; only the wall section may differ.
#[test]
fn profiling_never_changes_measurements_and_is_thread_count_invariant() {
    let corpus = corpus_of_size(0xC4D5, 60);
    let machine = cydra();

    let plain = measure_corpus_threads(&corpus, &machine, 6.0, 2);
    let (m1, r1) =
        measure_corpus_profiled(&corpus, &machine, BackendKind::Ims, 6.0, None, 1, None, "")
            .expect("no trace dir, no I/O");
    let (m4, r4) =
        measure_corpus_profiled(&corpus, &machine, BackendKind::Ims, 6.0, None, 4, None, "")
            .expect("no trace dir, no I/O");

    assert_eq!(corpus_jsonl(&plain), corpus_jsonl(&m1), "profiling changed a measurement");
    assert_eq!(corpus_jsonl(&m1), corpus_jsonl(&m4));

    let s1 = render_snapshot("corpus", &r1);
    let s4 = render_snapshot("corpus", &r4);
    let d1 = deterministic_section(&s1).expect("snapshot has a deterministic section");
    let d4 = deterministic_section(&s4).expect("snapshot has a deterministic section");
    assert_eq!(d1, d4, "deterministic sections must not depend on --threads");

    // Every pipeline layer reported in: graph analysis, scheduling, MRT
    // probes, code generation, and the VLIW simulator.
    for phase in [
        phase::GRAPH_SCC_WORK,
        phase::GRAPH_MINDIST_WORK,
        phase::MACHINE_MRT_PROBES,
        phase::SCHED_FINDSLOT_ITERS,
        phase::SCHED_STEPS,
        phase::SCHED_ATTEMPTS,
        phase::CODEGEN_INSTS,
        phase::VLIW_SIM_CYCLES,
    ] {
        assert!(r1.counter(phase) > 0, "no work recorded under {phase}");
    }
    assert_eq!(r1.counter(phase::CORPUS_LOOPS), corpus.loops.len() as u64);
    let slots = r1.hist(phase::HIST_SLOT_SEARCH).expect("slot-search histogram");
    assert_eq!(slots.total(), r1.counter(phase::SCHED_STEPS));
    assert_eq!(
        slots.sum(),
        r1.counter(phase::SCHED_FINDSLOT_ITERS) as i128,
        "per-step histogram must sum to the Table 4 counter"
    );
    let estart = r1.hist(phase::HIST_ESTART_PREDS).expect("estart histogram");
    assert!(estart.total() >= slots.total(), "START/STOP fire estart but not slot_search");
    // Wall spans exist but never leak into the deterministic sections.
    assert!(r1.wall(phase::WALL_LOOP).is_some());
    assert!(!d1.contains("total_ns"));
}

#[test]
fn exact_backend_profiling_matches_unprofiled_and_reports_search_work() {
    let corpus = corpus_of_size(5, 12);
    let machine = cydra();
    let node_limit = Some(200_000);

    let plain =
        measure_corpus_backend(&corpus, &machine, BackendKind::Exact, 6.0, node_limit, 2);
    let (ms, reg) = measure_corpus_profiled(
        &corpus,
        &machine,
        BackendKind::Exact,
        6.0,
        node_limit,
        2,
        None,
        "",
    )
    .expect("no trace dir, no I/O");

    assert_eq!(corpus_jsonl(&plain), corpus_jsonl(&ms));
    assert_eq!(reg.counter(phase::CORPUS_LOOPS), corpus.loops.len() as u64);
    let nodes: u64 = ms.iter().map(|m| m.exact.unwrap().nodes).sum();
    assert_eq!(reg.counter(phase::EXACT_NODES), nodes, "search nodes are all accounted for");
    // The profiled run also lowers and simulates each loop.
    assert!(reg.counter(phase::CODEGEN_INSTS) > 0);
    assert!(reg.counter(phase::VLIW_SIM_CYCLES) > 0);
}

#[test]
fn profiled_traces_are_byte_identical_to_unprofiled_traces() {
    let corpus = corpus_of_size(7, 8);
    let machine = cydra();
    let base = std::env::temp_dir().join(format!("ims_profile_trace_{}", std::process::id()));
    let plain_dir = base.join("plain");
    let prof_dir = base.join("profiled");

    ims_bench::measure_corpus_traced(&corpus, &machine, 6.0, 2, Some(&plain_dir), "")
        .expect("writes traces");
    measure_corpus_profiled(
        &corpus,
        &machine,
        BackendKind::Ims,
        6.0,
        None,
        2,
        Some(&prof_dir),
        "",
    )
    .expect("writes traces");

    let mut names: Vec<_> = std::fs::read_dir(&plain_dir)
        .unwrap()
        .map(|e| e.unwrap().file_name())
        .collect();
    names.sort();
    assert_eq!(names.len(), corpus.loops.len());
    for name in names {
        let a = std::fs::read(plain_dir.join(&name)).unwrap();
        let b = std::fs::read(prof_dir.join(&name)).unwrap();
        assert_eq!(a, b, "trace {name:?} differs under profiling");
    }
    std::fs::remove_dir_all(&base).ok();
}
