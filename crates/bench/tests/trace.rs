//! Integration tests for the traced corpus path: tracing must not
//! perturb the scheduler, trace directories must be byte-identical
//! across thread counts, and the written traces must faithfully replay
//! the schedules the measurements report.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use ims_bench::{corpus_jsonl, measure_corpus_threads, measure_corpus_traced, parse_trace_dir};
use ims_loopgen::corpus_of_size;
use ims_machine::cydra;
use ims_trace::{parse_trace, replay, TraceSummary};

/// A unique, self-cleaning temp directory per test.
struct TempDir(PathBuf);

impl TempDir {
    fn new(name: &str) -> TempDir {
        let path = std::env::temp_dir().join(format!("ims_bench_{name}_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&path);
        TempDir(path)
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.0);
    }
}

fn read_traces(dir: &Path) -> BTreeMap<String, String> {
    std::fs::read_dir(dir)
        .expect("trace dir exists")
        .map(|e| {
            let path = e.expect("readable entry").path();
            let name = path.file_name().unwrap().to_str().unwrap().to_string();
            (name, std::fs::read_to_string(&path).expect("readable trace"))
        })
        .collect()
}

#[test]
fn tracing_does_not_perturb_the_measurements() {
    let corpus = corpus_of_size(11, 25);
    let machine = cydra();
    let untraced = measure_corpus_threads(&corpus, &machine, 6.0, 2);

    let tmp = TempDir::new("perturb");
    let traced = measure_corpus_traced(&corpus, &machine, 6.0, 2, Some(&tmp.0), "")
        .expect("traces written");

    // corpus_jsonl covers every per-loop quantity including the Table 4
    // work counters, so byte-equality here proves the TraceWriter (and
    // the observer hooks it exercises) left the scheduler's behaviour
    // and instrumentation untouched.
    assert_eq!(corpus_jsonl(&untraced), corpus_jsonl(&traced));
}

#[test]
fn trace_directory_is_identical_across_thread_counts() {
    let corpus = corpus_of_size(12, 30);
    let machine = cydra();

    let one = TempDir::new("threads1");
    let four = TempDir::new("threads4");
    measure_corpus_traced(&corpus, &machine, 6.0, 1, Some(&one.0), "").expect("traces written");
    measure_corpus_traced(&corpus, &machine, 6.0, 4, Some(&four.0), "").expect("traces written");

    let a = read_traces(&one.0);
    let b = read_traces(&four.0);
    assert_eq!(a.len(), corpus.loops.len(), "one trace file per loop");
    assert_eq!(a, b, "trace files must not depend on the thread count");
}

#[test]
fn written_traces_replay_to_the_reported_schedules() {
    let corpus = corpus_of_size(13, 15);
    let machine = cydra();

    let tmp = TempDir::new("replay");
    let ms = measure_corpus_traced(&corpus, &machine, 6.0, 2, Some(&tmp.0), "")
        .expect("traces written");

    let traces = read_traces(&tmp.0);
    for (index, m) in ms.iter().enumerate() {
        let name = format!("loop_{index:05}.jsonl");
        let events = parse_trace(&traces[&name]).expect("trace parses");
        let summary = TraceSummary::from_events(&events);
        assert_eq!(summary.final_ii(), Some(m.ii), "{name}");
        assert_eq!(summary.total_steps(), m.total_steps, "{name}");
        assert_eq!(summary.evictions, m.counters.evictions, "{name}");
        let times = replay(&events).final_times().expect("complete schedule");
        // Every placement respects the final II's row structure: the
        // replayed times are exactly the schedule the measurement saw,
        // so its length (STOP time) must match.
        assert_eq!(
            times.iter().copied().max(),
            Some(m.schedule_length),
            "{name}"
        );
    }
}

#[test]
fn trace_flag_parses_both_spellings() {
    let to_args = |s: &[&str]| s.iter().map(|a| a.to_string()).collect::<Vec<_>>();
    assert_eq!(
        parse_trace_dir(&to_args(&["bin", "--trace", "/tmp/t"])),
        Some(PathBuf::from("/tmp/t"))
    );
    assert_eq!(
        parse_trace_dir(&to_args(&["bin", "--trace=/tmp/t", "--threads", "2"])),
        Some(PathBuf::from("/tmp/t"))
    );
    assert_eq!(parse_trace_dir(&to_args(&["bin", "--threads", "2"])), None);
}
