//! The HeightR scheduling priority (§3.2).
//!
//! HeightR extends the classic height-based list-scheduling priority to
//! cyclic graphs: `HeightR(STOP) = 0` and for every other operation
//!
//! ```text
//! HeightR(P) = max over successors Q of
//!              HeightR(Q) + Delay(P,Q) − II·Distance(P,Q)
//! ```
//!
//! (Figure 5a). The paper notes HeightR(P) is exactly `MinDist[P, STOP]`,
//! but computing the full MinDist matrix is needlessly expensive; instead
//! the implicit equations are solved iteratively. This implementation uses
//! repeated relaxation sweeps (a max-plus Bellman–Ford toward STOP), which
//! terminates because at any II ≥ RecMII every dependence cycle has
//! non-positive gain.

use ims_graph::NEG_INF;

use crate::counters::Counters;
use crate::problem::Problem;

/// Which scheduling priority drives `HighestPriorityOperation`.
///
/// §3.2: *"Although a number of iterative algorithms and priority functions
/// were investigated, simple extensions of the acyclic list scheduling
/// algorithm and the commonly used height-based priority function proved to
/// be near-best in schedule quality and near-best in computational
/// complexity."* The alternatives here exist to let that claim be checked
/// (see the `ablation` binary): [`PriorityKind::HeightR`] should match or
/// beat the others on optimality and scheduling effort.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum PriorityKind {
    /// The paper's HeightR: height to STOP with inter-iteration successors
    /// discounted by `II·distance` (the default).
    #[default]
    HeightR,
    /// Plain acyclic critical-path height: inter-iteration edges ignored.
    /// Blind to recurrence deadlines.
    CriticalPath,
    /// Source order: operations in body order. The weakest reasonable
    /// baseline.
    InputOrder,
}

/// Computes the scheduling priority of every node for the chosen scheme at
/// candidate initiation interval `ii` (larger = scheduled earlier).
pub fn priorities(
    problem: &Problem<'_>,
    ii: i64,
    kind: PriorityKind,
    counters: &mut Counters,
) -> Vec<i64> {
    match kind {
        PriorityKind::HeightR => height_r(problem, ii, counters),
        PriorityKind::CriticalPath => acyclic_height(problem, counters),
        PriorityKind::InputOrder => (0..problem.graph().num_nodes())
            .map(|i| -(i as i64))
            .collect(),
    }
}

/// Longest delay path to STOP over same-iteration (distance-0) edges only.
fn acyclic_height(problem: &Problem<'_>, counters: &mut Counters) -> Vec<i64> {
    let graph = problem.graph();
    let n = graph.num_nodes();
    let mut h = vec![0i64; n];
    // Distance-0 edges form a DAG; a few reverse sweeps settle it.
    loop {
        let mut changed = false;
        for v in (0..n).rev() {
            let mut best = h[v];
            for e in graph.succs(ims_graph::NodeId(v as u32)) {
                counters.heightr_work += 1;
                if e.distance != 0 {
                    continue;
                }
                best = best.max(h[e.to.index()] + e.delay.max(0));
            }
            if best > h[v] {
                h[v] = best;
                changed = true;
            }
        }
        if !changed {
            return h;
        }
    }
}

/// Computes `HeightR` for every node at the candidate initiation interval
/// `ii`.
///
/// Returns one height per node (indexable by `NodeId::index`). Heights of
/// nodes that cannot reach STOP would be `−∞`, but START/STOP scaffolding
/// guarantees every node reaches STOP, so all returned heights are finite.
/// Each edge relaxation increments `counters.heightr_work` (the quantity the
/// paper fits as `4.5021·N`).
///
/// # Panics
///
/// Panics if a relaxation fails to converge within `N + 2` sweeps, which
/// can only happen when `ii` is below the RecMII (a positive-gain cycle).
pub fn height_r(problem: &Problem<'_>, ii: i64, counters: &mut Counters) -> Vec<i64> {
    let graph = problem.graph();
    let n = graph.num_nodes();
    let stop = problem.stop();
    let mut h = vec![NEG_INF; n];
    h[stop.index()] = 0;

    // Relax in reverse node order first: successors tend to have larger
    // ids, so one backward sweep settles acyclic graphs.
    let mut sweeps = 0usize;
    loop {
        let mut changed = false;
        for v in (0..n).rev() {
            let mut best = h[v];
            for e in graph.succs(ims_graph::NodeId(v as u32)) {
                counters.heightr_work += 1;
                let hq = h[e.to.index()];
                if hq == NEG_INF {
                    continue;
                }
                let cand = hq + e.delay - ii * e.distance as i64;
                if cand > best {
                    best = cand;
                }
            }
            if best > h[v] {
                h[v] = best;
                changed = true;
            }
        }
        if !changed {
            break;
        }
        sweeps += 1;
        assert!(
            sweeps <= n + 2,
            "HeightR failed to converge: II {ii} is below the RecMII"
        );
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mii::rec_mii;
    use crate::problem::ProblemBuilder;
    use ims_graph::{compute_min_dist, DepKind, NodeId};
    use ims_ir::{OpId, Opcode};
    use ims_machine::{minimal, single_alu};

    #[test]
    fn chain_heights_accumulate_latency() {
        // single_alu: ALU latency 2. a -> b -> STOP.
        let m = single_alu();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 2, 0, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let h = height_r(&p, 1, &mut c);
        assert_eq!(h[p.stop().index()], 0);
        assert_eq!(h[b.index()], 2); // b -> STOP via its latency edge
        assert_eq!(h[a.index()], 4); // 2 (to b) + 2
        assert_eq!(h[p.start().index()], 4);
        assert!(c.heightr_work > 0);
    }

    #[test]
    fn inter_iteration_successors_discounted_by_ii() {
        // P -> Q with distance 2: HeightR(P) = HeightR(Q) + delay - II*2.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let p_ = pb.add_op(Opcode::Add, OpId(0));
        let q = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(p_, q, 10, 2, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let h = height_r(&p, 3, &mut c);
        // HeightR(Q) = 1 (latency edge); candidate via Q = 1 + 10 - 6 = 5;
        // candidate via own latency edge = 1. Max = 5.
        assert_eq!(h[q.index()], 1);
        assert_eq!(h[p_.index()], 5);
    }

    #[test]
    fn heights_equal_min_dist_to_stop() {
        // The paper: "If the MinDist matrix for the entire dependence graph
        // has been computed, HeightR(P) is directly available as
        // MinDist[P, STOP]".
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        let c_ = pb.add_op(Opcode::Add, OpId(2));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, c_, 1, 0, DepKind::Flow, false);
        pb.add_dep(c_, a, 1, 1, DepKind::Flow, false);
        pb.add_dep(b, b, 2, 1, DepKind::Flow, false);
        let p = pb.finish();
        let ii = rec_mii(&p, 1, &mut Counters::new());
        let mut c = Counters::new();
        let h = height_r(&p, ii, &mut c);
        let all: Vec<NodeId> = p.graph().nodes().collect();
        let mut w = 0u64;
        let md = compute_min_dist(p.graph(), &all, ii, &mut w);
        for node in p.graph().nodes() {
            if node == p.stop() {
                // HeightR(STOP) = 0 by definition, while MinDist[STOP, STOP]
                // is -inf (STOP has no path to itself).
                continue;
            }
            assert_eq!(
                h[node.index()],
                md.get(node, p.stop()),
                "HeightR mismatch at {node}"
            );
        }
    }

    #[test]
    fn recurrence_ops_get_priority_over_slack_ops() {
        // An op inside a tight recurrence should have height >= a free op.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let rec = pb.add_op(Opcode::Add, OpId(0));
        let free = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(rec, rec, 4, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let h = height_r(&p, 4, &mut c);
        assert!(h[rec.index()] >= h[free.index()]);
    }

    #[test]
    #[should_panic(expected = "below the RecMII")]
    fn diverges_below_recmii() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 5, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let _ = height_r(&p, 1, &mut c); // RecMII is 5
    }
}
