//! The open half of the backend seam: a registry that resolves
//! [`BackendSpec`]s to boxed [`SchedulerBackend`]s, and the portfolio
//! backend that races several members with a deterministic winner rule.
//!
//! `ims-core` cannot depend on the crates that implement the non-trivial
//! backends (`ims-exact`, `ims-sat` depend on core, not the other way
//! around), so the registry is *open*: [`BackendRegistry::new`]
//! pre-registers only the in-crate iterative scheduler, and each backend
//! crate exports a `register(&mut BackendRegistry)` hook
//! (`ims_sat::default_registry()` assembles all three). Resolution is a
//! separate, later step from parsing: a spec can parse fine (`sat` is
//! always a valid name) and still fail to resolve against a registry
//! that never registered the SAT crate — that failure is a structured
//! [`ResolveError`], not a panic, which is what lets the `scheduled`
//! daemon turn an unavailable backend into a per-request error line.
//!
//! # Portfolio determinism
//!
//! [`PortfolioBackend`] runs *every* member to completion — racing with
//! cancellation would make the loser's partial work (and its counters)
//! depend on timing. Members run on scoped threads when `threads > 1`,
//! but the winner rule never looks at wall-clock: lowest achieved II
//! wins, ties broken by member order in the spec. Outcomes, steps, and
//! the winner are therefore byte-identical across thread counts.

use std::fmt;

use crate::backend::{BackendKind, BackendOutcome, IterativeBackend, SchedulerBackend};
use crate::observe::SchedObserver;
use crate::problem::Problem;
use crate::sched::{SchedConfig, ScheduleError};
use crate::spec::BackendSpec;

/// Everything a backend factory may want when instantiating a backend.
///
/// One params struct serves every backend; each factory picks the fields
/// it understands (the iterative scheduler reads `sched`, branch-and-
/// bound adds `node_limit`, the SAT backend adds `conflict_limit`).
#[derive(Debug, Clone, PartialEq)]
pub struct BackendParams {
    /// Heuristic scheduler configuration (BudgetRatio, max II, priority);
    /// the exact backends also use it for their internal heuristic run.
    pub sched: SchedConfig,
    /// Branch-and-bound node budget; `None` keeps the backend's default.
    pub node_limit: Option<u64>,
    /// SAT-solver conflict budget; `None` keeps the backend's default.
    pub conflict_limit: Option<u64>,
}

impl Default for BackendParams {
    fn default() -> Self {
        BackendParams {
            sched: SchedConfig::default(),
            node_limit: None,
            conflict_limit: None,
        }
    }
}

impl BackendParams {
    /// Default parameters: default `SchedConfig`, backend-default limits.
    pub fn new() -> Self {
        BackendParams::default()
    }

    /// Sets the heuristic scheduler configuration.
    pub fn sched(mut self, sched: SchedConfig) -> Self {
        self.sched = sched;
        self
    }

    /// Sets the branch-and-bound node budget.
    pub fn node_limit(mut self, limit: u64) -> Self {
        self.node_limit = Some(limit);
        self
    }

    /// Sets the SAT-solver conflict budget.
    pub fn conflict_limit(mut self, limit: u64) -> Self {
        self.conflict_limit = Some(limit);
        self
    }
}

/// A backend instantiated by a registry: boxed, and `Send + Sync` so the
/// portfolio can race members on scoped threads.
pub type BoxedBackend = Box<dyn SchedulerBackend + Send + Sync>;

type Factory = Box<dyn Fn(&BackendParams) -> BoxedBackend + Send + Sync>;

/// Resolves [`BackendSpec`]s to runnable backends.
pub struct BackendRegistry {
    entries: Vec<(BackendKind, Factory)>,
}

impl fmt::Debug for BackendRegistry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("BackendRegistry")
            .field("registered", &self.registered())
            .finish()
    }
}

impl Default for BackendRegistry {
    fn default() -> Self {
        BackendRegistry::new()
    }
}

impl BackendRegistry {
    /// A registry with the in-crate [`IterativeBackend`] pre-registered.
    /// Backend crates add themselves via their `register` hooks;
    /// `ims_sat::default_registry()` returns all three leaves.
    pub fn new() -> Self {
        let mut reg = BackendRegistry::empty();
        reg.register(BackendKind::Ims, |params: &BackendParams| {
            Box::new(IterativeBackend::new(params.sched.clone())) as BoxedBackend
        });
        reg
    }

    /// A registry with nothing registered (for tests of resolution
    /// failure; production code starts from [`BackendRegistry::new`]).
    pub fn empty() -> Self {
        BackendRegistry {
            entries: Vec::new(),
        }
    }

    /// Registers (or replaces) the factory for `kind`.
    pub fn register<F>(&mut self, kind: BackendKind, factory: F)
    where
        F: Fn(&BackendParams) -> BoxedBackend + Send + Sync + 'static,
    {
        match self.entries.iter_mut().find(|(k, _)| *k == kind) {
            Some(entry) => entry.1 = Box::new(factory),
            None => self.entries.push((kind, Box::new(factory))),
        }
    }

    /// Whether a factory for `kind` is registered.
    pub fn contains(&self, kind: BackendKind) -> bool {
        self.entries.iter().any(|(k, _)| *k == kind)
    }

    /// The registered leaf kinds, in registration order.
    pub fn registered(&self) -> Vec<BackendKind> {
        self.entries.iter().map(|(k, _)| *k).collect()
    }

    /// Instantiates the leaf backend `kind`.
    ///
    /// # Errors
    ///
    /// [`ResolveError`] when no factory for `kind` is registered.
    pub fn make(&self, kind: BackendKind, params: &BackendParams) -> Result<BoxedBackend, ResolveError> {
        self.entries
            .iter()
            .find(|(k, _)| *k == kind)
            .map(|(_, f)| f(params))
            .ok_or_else(|| ResolveError {
                missing: kind,
                registered: self.registered(),
            })
    }

    /// Resolves a full spec: a leaf instantiates directly, a portfolio
    /// instantiates every member and wraps them in a
    /// [`PortfolioBackend`].
    ///
    /// # Errors
    ///
    /// [`ResolveError`] naming the first unregistered member.
    pub fn resolve(
        &self,
        spec: &BackendSpec,
        params: &BackendParams,
    ) -> Result<BoxedBackend, ResolveError> {
        match spec {
            BackendSpec::Leaf(kind) => self.make(*kind, params),
            BackendSpec::Portfolio(kinds) => {
                let members = kinds
                    .iter()
                    .map(|&k| Ok((k, self.make(k, params)?)))
                    .collect::<Result<Vec<_>, ResolveError>>()?;
                Ok(Box::new(PortfolioBackend::new(members)))
            }
        }
    }
}

/// A spec named a backend the registry has no factory for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolveError {
    /// The leaf backend that is not registered.
    pub missing: BackendKind,
    /// What *is* registered, in registration order.
    pub registered: Vec<BackendKind>,
}

impl fmt::Display for ResolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.registered.iter().map(|k| k.name()).collect();
        write!(
            f,
            "backend {:?} is not registered (registered: {})",
            self.missing.name(),
            if names.is_empty() {
                "none".to_string()
            } else {
                names.join(", ")
            }
        )
    }
}

impl std::error::Error for ResolveError {}

/// Why [`Scheduler::run_backend`](crate::Scheduler::run_backend) failed:
/// either the spec did not resolve, or the resolved backend's run did.
#[derive(Debug, Clone, PartialEq)]
pub enum BackendRunError {
    /// The spec named an unregistered backend.
    Resolve(ResolveError),
    /// The resolved backend failed to schedule.
    Schedule(ScheduleError),
}

impl fmt::Display for BackendRunError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendRunError::Resolve(e) => e.fmt(f),
            BackendRunError::Schedule(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for BackendRunError {}

impl From<ResolveError> for BackendRunError {
    fn from(e: ResolveError) -> Self {
        BackendRunError::Resolve(e)
    }
}

impl From<ScheduleError> for BackendRunError {
    fn from(e: ScheduleError) -> Self {
        BackendRunError::Schedule(e)
    }
}

/// How a portfolio run went, member by member.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PortfolioReport {
    /// The winning member's kind.
    pub winner: BackendKind,
    /// The winning member's index in the spec's member order.
    pub winner_index: usize,
    /// Per member, in spec order: the achieved II (`None` when the
    /// member errored).
    pub member_iis: Vec<(BackendKind, Option<i64>)>,
}

/// Runs every member backend and keeps the best outcome.
///
/// Winner rule (deterministic, thread-count-invariant): the member with
/// the lowest `bounds.best_ub` (achieved II) wins; ties go to the
/// earliest member in spec order. Merged bounds combine the members'
/// knowledge: `proved_lb` is the strongest lower bound any member
/// proved (capped at the winner's II), and `steps` is the summed work.
/// Members always run to completion — no cancellation — so every field
/// of the outcome is invariant under `threads`.
pub struct PortfolioBackend {
    members: Vec<(BackendKind, BoxedBackend)>,
    threads: usize,
}

impl fmt::Debug for PortfolioBackend {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("PortfolioBackend")
            .field("members", &self.member_kinds())
            .field("threads", &self.threads)
            .finish()
    }
}

impl PortfolioBackend {
    /// A portfolio over `members`, racing one thread per member.
    ///
    /// # Panics
    ///
    /// When `members` is empty (specs guarantee at least one member).
    pub fn new(members: Vec<(BackendKind, BoxedBackend)>) -> Self {
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        let threads = members.len();
        PortfolioBackend { members, threads }
    }

    /// Caps the racing threads; `1` runs members sequentially (the
    /// outcome is identical either way — only wall-clock changes).
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads.max(1);
        self
    }

    /// The member kinds, in spec order.
    pub fn member_kinds(&self) -> Vec<BackendKind> {
        self.members.iter().map(|(k, _)| *k).collect()
    }

    /// Runs every member and returns the winning outcome plus the
    /// per-member report. When `observer` is given, the winner is re-run
    /// with it after the race — members are deterministic, so the replay
    /// reproduces the raced outcome exactly and the observer sees a
    /// single clean event stream attributed (via
    /// [`SchedObserver::backend`]) to the winning member.
    ///
    /// # Errors
    ///
    /// The first member's error, if *every* member failed; any single
    /// success wins over errors.
    pub fn schedule_full(
        &self,
        problem: &Problem<'_>,
        observer: Option<&mut dyn SchedObserver>,
    ) -> Result<(BackendOutcome, PortfolioReport), ScheduleError> {
        let results = self.race(problem);

        let winner_index = results
            .iter()
            .enumerate()
            .filter_map(|(i, r)| r.as_ref().ok().map(|o| (i, o.bounds.best_ub)))
            .min_by_key(|&(i, ii)| (ii, i))
            .map(|(i, _)| i);
        let Some(winner_index) = winner_index else {
            let first_err = results
                .into_iter()
                .find_map(Result::err)
                .expect("no winner implies at least one error");
            return Err(first_err);
        };

        let report = PortfolioReport {
            winner: self.members[winner_index].0,
            winner_index,
            member_iis: self
                .members
                .iter()
                .zip(&results)
                .map(|((k, _), r)| (*k, r.as_ref().ok().map(|o| o.bounds.best_ub)))
                .collect(),
        };

        let steps: u64 = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| o.steps)
            .sum();
        let proved_lb = results
            .iter()
            .filter_map(|r| r.as_ref().ok())
            .map(|o| o.bounds.proved_lb)
            .max()
            .expect("winner exists");

        let mut outcome = match observer {
            // Deterministic members: the observed replay of the winner
            // reproduces the raced outcome bit for bit.
            Some(observer) => {
                self.members[winner_index].1.schedule_observed_dyn(problem, observer)?
            }
            None => {
                let mut it = results.into_iter();
                it.nth(winner_index).expect("winner index in range")?
            }
        };
        outcome.bounds.proved_lb = proved_lb.min(outcome.bounds.best_ub);
        outcome.steps = steps;
        Ok((outcome, report))
    }

    /// Runs all members to completion, sequentially or on scoped
    /// threads; the result vector is in member order either way.
    fn race(&self, problem: &Problem<'_>) -> Vec<Result<BackendOutcome, ScheduleError>> {
        if self.threads <= 1 || self.members.len() == 1 {
            return self
                .members
                .iter()
                .map(|(_, b)| b.schedule(problem))
                .collect();
        }
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter()
                .map(|(_, b)| scope.spawn(move || b.schedule(problem)))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("portfolio member panicked"))
                .collect()
        })
    }
}

impl SchedulerBackend for PortfolioBackend {
    fn kind(&self) -> BackendKind {
        self.members[0].0
    }

    fn spec(&self) -> BackendSpec {
        BackendSpec::Portfolio(self.member_kinds())
    }

    fn schedule(&self, problem: &Problem<'_>) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_full(problem, None).map(|(o, _)| o)
    }

    fn schedule_observed_dyn(
        &self,
        problem: &Problem<'_>,
        observer: &mut dyn SchedObserver,
    ) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_full(problem, Some(observer)).map(|(o, _)| o)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;

    fn two_op_problem(machine: &ims_machine::MachineModel) -> Problem<'_> {
        let mut pb = ProblemBuilder::new(machine);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn default_registry_resolves_only_ims() {
        let reg = BackendRegistry::new();
        assert_eq!(reg.registered(), vec![BackendKind::Ims]);
        assert!(reg.contains(BackendKind::Ims));
        assert!(!reg.contains(BackendKind::Exact));

        let params = BackendParams::new();
        let backend = reg.make(BackendKind::Ims, &params).unwrap();
        assert_eq!(backend.kind(), BackendKind::Ims);
        assert_eq!(backend.spec(), BackendSpec::Leaf(BackendKind::Ims));

        let err = reg.make(BackendKind::Sat, &params).map(|_| ()).unwrap_err();
        assert_eq!(err.missing, BackendKind::Sat);
        assert_eq!(err.registered, vec![BackendKind::Ims]);
        let msg = err.to_string();
        assert!(msg.contains("\"sat\""), "{msg}");
        assert!(msg.contains("registered: ims"), "{msg}");

        // A portfolio with an unregistered member fails the same way.
        let spec: BackendSpec = "portfolio(ims,exact)".parse().unwrap();
        let err = reg.resolve(&spec, &params).map(|_| ()).unwrap_err();
        assert_eq!(err.missing, BackendKind::Exact);
    }

    #[test]
    fn empty_registry_reports_nothing_registered() {
        let reg = BackendRegistry::empty();
        let err = reg
            .make(BackendKind::Ims, &BackendParams::new())
            .map(|_| ())
            .unwrap_err();
        assert!(err.to_string().contains("registered: none"), "{err}");
    }

    #[test]
    fn registered_factories_receive_params() {
        let mut reg = BackendRegistry::new();
        // Re-registering Ims replaces the factory.
        reg.register(BackendKind::Ims, |p: &BackendParams| {
            Box::new(IterativeBackend::new(p.sched.clone().max_ii(1))) as BoxedBackend
        });
        assert_eq!(reg.registered(), vec![BackendKind::Ims]);

        let m = minimal();
        let p = two_op_problem(&m);
        let backend = reg
            .make(BackendKind::Ims, &BackendParams::new())
            .unwrap();
        // The II-1 cap injected by the replaced factory binds (this
        // loop's MII is 2), proving params flow through the factory.
        let err = backend.schedule(&p).unwrap_err();
        assert_eq!(err, ScheduleError::IiCapExceeded { mii: 2, max_ii: 1 });
    }

    #[test]
    fn portfolio_of_ims_matches_plain_ims_and_is_thread_invariant() {
        let m = minimal();
        let p = two_op_problem(&m);
        let reg = BackendRegistry::new();
        let params = BackendParams::new();

        let solo = reg
            .make(BackendKind::Ims, &params)
            .unwrap()
            .schedule(&p)
            .unwrap();

        let spec: BackendSpec = "portfolio(ims,ims)".parse().unwrap();
        let backend = reg.resolve(&spec, &params).unwrap();
        assert_eq!(backend.kind(), BackendKind::Ims);
        assert_eq!(backend.spec().to_string(), "portfolio(ims,ims)");

        let raced = backend.schedule(&p).unwrap();
        assert_eq!(raced.schedule, solo.schedule);
        assert_eq!(raced.bounds, solo.bounds);
        assert_eq!(raced.steps, solo.steps * 2, "steps sum over members");

        // Sequential (threads=1) must be byte-identical to the race.
        let members = vec![
            (BackendKind::Ims, reg.make(BackendKind::Ims, &params).unwrap()),
            (BackendKind::Ims, reg.make(BackendKind::Ims, &params).unwrap()),
        ];
        let sequential = PortfolioBackend::new(members).threads(1);
        let (seq_out, report) = sequential.schedule_full(&p, None).unwrap();
        assert_eq!(seq_out, raced);
        assert_eq!(report.winner_index, 0, "ties go to the earliest member");
        assert_eq!(
            report.member_iis,
            vec![
                (BackendKind::Ims, Some(solo.schedule.ii)),
                (BackendKind::Ims, Some(solo.schedule.ii)),
            ]
        );
    }
}
