//! Acyclic list scheduling (the paper's cost yardstick and schedule-length
//! lower bound).
//!
//! §4.2: *"The lower bound on the modulo schedule length for a given II is
//! the larger of MinDist[START, STOP] and the actual schedule length
//! achieved by acyclic list scheduling."* And §4.3 treats acyclic list
//! scheduling as the complexity floor: *"it is reasonable to view the
//! computational complexity of acyclic list scheduling as a lower bound on
//! that for modulo scheduling"* — each operation is scheduled exactly once.
//!
//! The acyclic problem is obtained by ignoring every inter-iteration edge
//! (distance > 0), which leaves a DAG for any well-formed loop body.

use std::collections::HashMap;

use ims_graph::NodeId;

use crate::problem::Problem;

/// The result of list-scheduling one iteration in isolation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ListSchedule {
    /// Issue time per node.
    pub time: Vec<i64>,
    /// Chosen alternative per node (0 for pseudo-operations).
    pub alternative: Vec<usize>,
    /// The STOP pseudo-operation's time: the schedule length.
    pub length: i64,
}

/// List-schedules the acyclic (distance-0) subgraph of `problem` with
/// unlimited schedule length and a linear (non-modulo) reservation table.
///
/// Operations are processed in topological order of the acyclic subgraph,
/// with height-based priority breaking ties among simultaneously ready
/// operations; each is placed at the earliest conflict-free time at or
/// after its dependence-determined earliest start. Every operation is
/// scheduled exactly once.
///
/// # Panics
///
/// Panics if the distance-0 subgraph contains a cycle (an illegal
/// same-iteration ordering cycle).
pub fn list_schedule(problem: &Problem<'_>) -> ListSchedule {
    let graph = problem.graph();
    let n = graph.num_nodes();

    // Acyclic heights: longest delay path to STOP over distance-0 edges.
    // Computed in reverse topological order below; first get a topological
    // order via Kahn's algorithm.
    let mut indegree = vec![0usize; n];
    for e in graph.edges() {
        if e.distance == 0 {
            indegree[e.to.index()] += 1;
        }
    }
    let mut ready: Vec<NodeId> = (0..n as u32)
        .map(NodeId)
        .filter(|v| indegree[v.index()] == 0)
        .collect();
    let mut topo: Vec<NodeId> = Vec::with_capacity(n);
    while let Some(v) = ready.pop() {
        topo.push(v);
        for e in graph.succs(v) {
            if e.distance == 0 {
                indegree[e.to.index()] -= 1;
                if indegree[e.to.index()] == 0 {
                    ready.push(e.to);
                }
            }
        }
    }
    assert_eq!(
        topo.len(),
        n,
        "distance-0 subgraph has a cycle: illegal same-iteration ordering"
    );

    // Heights over the DAG (for tie-breaking and diagnostics).
    let mut height = vec![0i64; n];
    for &v in topo.iter().rev() {
        let mut h = 0;
        for e in graph.succs(v) {
            if e.distance == 0 {
                h = h.max(height[e.to.index()] + e.delay);
            }
        }
        height[v.index()] = h;
    }

    // Greedy placement in topological order, preferring higher operations
    // when several are available at the same topological rank. Sorting the
    // whole topological order by (rank, -height) keeps it deterministic.
    let order = {
        let mut rank = vec![0usize; n];
        for (i, &v) in topo.iter().enumerate() {
            rank[v.index()] = i;
        }
        let mut order = topo.clone();
        order.sort_by_key(|v| (rank[v.index()], std::cmp::Reverse(height[v.index()])));
        order
    };

    let mut time = vec![0i64; n];
    let mut alternative = vec![0usize; n];
    // Linear reservation table: (resource, cycle) -> occupied.
    let mut busy: HashMap<(u32, i64), NodeId> = HashMap::new();

    for &v in &order {
        let mut estart = 0i64;
        for e in graph.preds(v) {
            if e.distance == 0 {
                estart = estart.max(time[e.from.index()] + e.delay);
            }
        }
        match problem.info(v) {
            None => time[v.index()] = estart,
            Some(info) => {
                let mut t = estart;
                'search: loop {
                    for (ai, alt) in info.alternatives.iter().enumerate() {
                        let fits = alt
                            .table
                            .uses()
                            .iter()
                            .all(|&(r, off)| !busy.contains_key(&(r.0, t + off as i64)));
                        if fits {
                            for &(r, off) in alt.table.uses() {
                                busy.insert((r.0, t + off as i64), v);
                            }
                            time[v.index()] = t;
                            alternative[v.index()] = ai;
                            break 'search;
                        }
                    }
                    t += 1;
                }
            }
        }
    }

    let length = time[problem.stop().index()];
    ListSchedule {
        time,
        alternative,
        length,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{minimal, single_alu, wide};

    #[test]
    fn chain_length_is_sum_of_latencies() {
        // single_alu: Load latency 3, Add latency 2. load -> add -> store.
        let m = single_alu();
        let mut pb = ProblemBuilder::new(&m);
        let l = pb.add_op(Opcode::Load, OpId(0));
        let a = pb.add_op(Opcode::Add, OpId(1));
        let s = pb.add_op(Opcode::Store, OpId(2));
        pb.add_dep(l, a, 3, 0, DepKind::Flow, false);
        pb.add_dep(a, s, 2, 0, DepKind::Flow, false);
        let p = pb.finish();
        let ls = list_schedule(&p);
        assert_eq!(ls.time[l.index()], 0);
        assert_eq!(ls.time[a.index()], 3);
        assert_eq!(ls.time[s.index()], 5);
        // STOP at store-time + store-latency.
        assert_eq!(ls.length, 5 + 3);
    }

    #[test]
    fn resource_contention_serializes() {
        // Three independent adds on a single unit issue on distinct cycles.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let ns: Vec<NodeId> = (0..3).map(|i| pb.add_op(Opcode::Add, OpId(i))).collect();
        let p = pb.finish();
        let ls = list_schedule(&p);
        let mut times: Vec<i64> = ns.iter().map(|&v| ls.time[v.index()]).collect();
        times.sort();
        assert_eq!(times, vec![0, 1, 2]);
    }

    #[test]
    fn alternatives_allow_parallel_issue() {
        let m = wide(3);
        let mut pb = ProblemBuilder::new(&m);
        let ns: Vec<NodeId> = (0..3).map(|i| pb.add_op(Opcode::Add, OpId(i))).collect();
        let p = pb.finish();
        let ls = list_schedule(&p);
        for &v in &ns {
            assert_eq!(ls.time[v.index()], 0);
        }
        // They must use distinct alternatives.
        let mut alts: Vec<usize> = ns.iter().map(|&v| ls.alternative[v.index()]).collect();
        alts.sort();
        alts.dedup();
        assert_eq!(alts.len(), 3);
    }

    #[test]
    fn inter_iteration_edges_ignored() {
        // A self-recurrence does not serialize the acyclic schedule.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 50, 1, DepKind::Flow, false);
        let p = pb.finish();
        let ls = list_schedule(&p);
        assert_eq!(ls.time[a.index()], 0);
        assert_eq!(ls.length, 1);
    }

    #[test]
    #[should_panic(expected = "cycle")]
    fn distance_zero_cycle_panics() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 0, DepKind::Flow, false);
        let p = pb.finish();
        let _ = list_schedule(&p);
    }

    #[test]
    fn empty_problem_has_zero_length() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        assert_eq!(list_schedule(&p).length, 0);
    }
}
