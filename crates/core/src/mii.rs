//! The minimum initiation interval (§2).
//!
//! `MII = max(ResMII, RecMII)`. The MII is a lower bound on any legal II
//! but *"is not necessarily an achievable lower bound"* in the face of
//! recurrences and/or complex patterns of resource usage.

use ims_graph::{elementary_circuits, sccs, MinDistSolver, NodeId, SccInfo};

use crate::counters::Counters;
use crate::problem::Problem;

/// The three II lower bounds of §2.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MiiInfo {
    /// Resource-constrained lower bound (§2.1).
    pub res_mii: i64,
    /// Recurrence-constrained lower bound (§2.2).
    pub rec_mii: i64,
    /// `max(res_mii, rec_mii)`, never below 1.
    pub mii: i64,
}

/// Computes the resource-constrained MII (§2.1).
///
/// Exact ResMII is a bin-packing problem, *"impractical, in general, to
/// compute exactly"*; the paper's approximation is used instead: sort the
/// operations by increasing number of alternatives, then, taking each
/// operation in order, select the alternative that *"yields the lowest
/// partial ResMII, i.e., the usage count of the most heavily used resource
/// at that point"*. The final usage count of the most heavily used resource
/// is the ResMII (never below 1).
pub fn res_mii(problem: &Problem<'_>, counters: &mut Counters) -> i64 {
    res_mii_with_usage(problem, counters).0
}

/// [`res_mii`] with provenance: also returns the final per-resource usage
/// vector of the greedy bin-packing (indexed by
/// [`ResourceId::index`](ims_machine::ResourceId)). The ResMII equals the
/// maximum entry (clamped to 1), so `usage[r] == res_mii` identifies the
/// *binding* resource(s) — the saturated resource class `ims-explain`
/// names when attributing a resource-bound MII.
pub fn res_mii_with_usage(problem: &Problem<'_>, counters: &mut Counters) -> (i64, Vec<u64>) {
    let machine = problem.machine();
    let mut nodes: Vec<NodeId> = problem.op_nodes().collect();
    // Radix-style stable sort by number of alternatives (degrees of
    // freedom); the paper notes this step is O(N) with a radix sort, and a
    // stable sort keeps the procedure deterministic.
    nodes.sort_by_key(|&n| {
        problem
            .info(n)
            .map(|i| i.alternatives.len())
            .unwrap_or(usize::MAX)
    });

    let mut usage = vec![0u64; machine.num_resources()];
    // Incremental trial evaluation: the peak after adding an alternative is
    // max(current peak, usage + this alternative's contribution) over the
    // resources the alternative touches, so no per-trial clone of `usage`
    // is needed. `delta` is scratch for duplicate resource uses within one
    // alternative (a table may reserve the same resource at several
    // offsets), zeroed again after each trial.
    let mut cur_peak = 0u64;
    let mut delta = vec![0u64; machine.num_resources()];
    for node in nodes {
        let info = problem.info(node).expect("op_nodes yields only real ops");
        // Choose the alternative minimizing the partial ResMII.
        let mut best: Option<(u64, usize)> = None;
        for (ai, alt) in info.alternatives.iter().enumerate() {
            let mut peak = cur_peak;
            for &(r, _) in alt.table.uses() {
                counters.resmii_work += 1;
                delta[r.index()] += 1;
                let trial = usage[r.index()] + delta[r.index()];
                if trial > peak {
                    peak = trial;
                }
            }
            for &(r, _) in alt.table.uses() {
                delta[r.index()] = 0;
            }
            if best.is_none_or(|(bp, _)| peak < bp) {
                best = Some((peak, ai));
            }
        }
        if let Some((_, ai)) = best {
            for &(r, _) in info.alternatives[ai].table.uses() {
                let u = &mut usage[r.index()];
                *u += 1;
                if *u > cur_peak {
                    cur_peak = *u;
                }
            }
        }
    }
    (cur_peak.max(1) as i64, usage)
}

/// Whether an SCC can constrain the II: it is non-trivial, or its single
/// node carries a self-edge.
fn scc_constrains(info: &SccInfo, c: usize, problem: &Problem<'_>) -> bool {
    info.is_recurrence(c, problem.graph())
}

/// Computes the recurrence-constrained MII (§2.2) by per-SCC MinDist
/// feasibility probing.
///
/// Following the paper: the initial candidate is `lower` (the ResMII in a
/// production compiler, since only the MII matters); if the candidate is
/// infeasible for some SCC, *"the candidate MII is incremented until there
/// are no positive entries on the diagonal. The value of the increment is
/// doubled each time … A binary search is performed between this last,
/// successful candidate and the previous unsuccessful value."* Each SCC
/// starts from the MII computed with the previous SCC.
///
/// Returns the resulting MII candidate: `max(lower, RecMII)` — callers that
/// want the pure RecMII pass `lower = 1`.
pub fn rec_mii(problem: &Problem<'_>, lower: i64, counters: &mut Counters) -> i64 {
    let scc_info = sccs(problem.graph(), &mut counters.scc_work);
    let mut candidate = lower.max(1);

    for c in 0..scc_info.components.len() {
        if !scc_constrains(&scc_info, c, problem) {
            continue;
        }
        let nodes = &scc_info.components[c];
        // One solver per SCC: the subset mapping and edge list are shared
        // by every probe of the doubling and binary-search phases below.
        let mut solver = MinDistSolver::new(problem.graph(), nodes);
        let mut feasible = |ii: i64, counters: &mut Counters| {
            solver.probe(ii, &mut counters.mindist_work)
        };
        if feasible(candidate, counters) {
            continue;
        }
        // Geometric probe upward.
        let mut last_bad = candidate;
        let mut inc = 1i64;
        let mut good;
        loop {
            good = last_bad + inc;
            if feasible(good, counters) {
                break;
            }
            last_bad = good;
            inc *= 2;
        }
        // Binary search in (last_bad, good].
        while last_bad + 1 < good {
            let mid = last_bad + (good - last_bad) / 2;
            if feasible(mid, counters) {
                good = mid;
            } else {
                last_bad = mid;
            }
        }
        candidate = good;
    }
    candidate
}

/// Computes the RecMII by enumerating elementary circuits — the Cydra 5
/// compiler's method, reproduced as a cross-check for [`rec_mii`].
///
/// Returns `None` if the graph has more than `max_circuits` elementary
/// circuits (enumeration is exponential in general, which is exactly why
/// the paper prefers the MinDist method).
pub fn rec_mii_by_circuits(problem: &Problem<'_>, max_circuits: usize) -> Option<i64> {
    let (circuits, complete) = elementary_circuits(problem.graph(), max_circuits, &mut 0u64);
    if !complete {
        return None;
    }
    Some(
        circuits
            .iter()
            .map(|c| c.min_ii())
            .max()
            .unwrap_or(0)
            .max(1),
    )
}

/// Computes all three bounds of §2: ResMII, RecMII (seeded with the ResMII,
/// as the paper recommends for a production compiler), and their maximum.
///
/// # Example
///
/// Two operations on a single-unit machine give ResMII 2; a loop-carried
/// cycle with total delay 2 and distance 1 gives RecMII 2:
///
/// ```
/// use ims_core::{compute_mii, Counters, ProblemBuilder};
/// use ims_graph::DepKind;
/// use ims_ir::{OpId, Opcode};
/// use ims_machine::minimal;
///
/// let machine = minimal();
/// let mut pb = ProblemBuilder::new(&machine);
/// let a = pb.add_op(Opcode::Add, OpId(0));
/// let b = pb.add_op(Opcode::Add, OpId(1));
/// pb.add_dep(a, b, 1, 0, DepKind::Flow, false); // same iteration
/// pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // next iteration
/// let problem = pb.finish();
///
/// let mii = compute_mii(&problem, &mut Counters::new());
/// assert_eq!(mii.res_mii, 2); // two ops share one unit
/// assert_eq!(mii.rec_mii, 2); // ceil(delay 2 / distance 1)
/// assert_eq!(mii.mii, 2);
/// ```
pub fn compute_mii(problem: &Problem<'_>, counters: &mut Counters) -> MiiInfo {
    let res = res_mii(problem, counters);
    let combined = rec_mii(problem, res, counters);
    // `combined` is max(res, rec); recover a standalone RecMII figure for
    // reporting (Table 3 needs max(0, RecMII − ResMII), which equals
    // combined − res).
    MiiInfo {
        res_mii: res,
        rec_mii: combined,
        mii: combined.max(res).max(1),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{cydra, cydra_simple, minimal, wide};

    fn straight_line<'m>(machine: &'m ims_machine::MachineModel, opcodes: &[Opcode]) -> Problem<'m> {
        let mut pb = ProblemBuilder::new(machine);
        let mut prev: Option<NodeId> = None;
        for (i, &op) in opcodes.iter().enumerate() {
            let n = pb.add_op(op, OpId(i as u32));
            if let Some(p) = prev {
                pb.add_dep(p, n, 1, 0, DepKind::Flow, false);
            }
            prev = Some(n);
        }
        pb.finish()
    }

    #[test]
    fn res_mii_counts_most_used_resource() {
        // minimal(): every op uses the single unit once => ResMII = #ops.
        let m = minimal();
        let p = straight_line(&m, &[Opcode::Add, Opcode::Add, Opcode::Add]);
        let mut c = Counters::new();
        assert_eq!(res_mii(&p, &mut c), 3);
        assert!(c.resmii_work > 0);
    }

    #[test]
    fn res_mii_exploits_alternatives() {
        // wide(3): every op has 3 alternatives; 3 ops fit at ResMII 1.
        let m = wide(3);
        let p = straight_line(&m, &[Opcode::Add, Opcode::Add, Opcode::Add]);
        let mut c = Counters::new();
        assert_eq!(res_mii(&p, &mut c), 1);
        // 4 ops need ResMII 2.
        let p = straight_line(&m, &[Opcode::Add; 4]);
        assert_eq!(res_mii(&p, &mut c), 2);
    }

    #[test]
    fn res_mii_on_cydra_adder_bottleneck() {
        // On the Cydra models the single adder is the bottleneck for 2
        // adds + 1 mul (the 4-wide instruction fields absorb 3 ops/cycle).
        for m in [cydra(), cydra_simple()] {
            let p = straight_line(&m, &[Opcode::Add, Opcode::Add, Opcode::Mul]);
            let mut c = Counters::new();
            assert_eq!(res_mii(&p, &mut c), 2, "{}", m.name());
        }
        // Five adds: the adder forces ResMII 5.
        let m = cydra();
        let p = straight_line(&m, &[Opcode::Add; 5]);
        let mut c = Counters::new();
        assert_eq!(res_mii(&p, &mut c), 5);
        // Issue width binds when the ops spread across units: 5 address
        // adds have two ALUs (ResMII 3) but only 4 fields per cycle.
        let p = straight_line(&m, &[Opcode::AddrAdd; 8]);
        assert_eq!(res_mii(&p, &mut c), 4, "two ALUs bound 8 addr-adds");
    }

    #[test]
    fn res_mii_usage_names_the_binding_resource() {
        // Five adds on cydra: the adder pipeline saturates at usage 5,
        // and the usage vector singles out exactly the adder resources.
        let m = cydra();
        let p = straight_line(&m, &[Opcode::Add; 5]);
        let mut c = Counters::new();
        let (res, usage) = res_mii_with_usage(&p, &mut c);
        assert_eq!(res, 5);
        assert_eq!(res_mii(&p, &mut c), 5, "the two entry points agree");
        assert_eq!(usage.len(), m.num_resources());
        assert_eq!(usage.iter().copied().max(), Some(5));
        let binding: Vec<&str> = usage
            .iter()
            .enumerate()
            .filter(|&(_, &u)| u == 5)
            .map(|(i, _)| m.resources()[i].name.as_str())
            .collect();
        // The adder pipeline saturates (the greedy's tie-breaking also
        // packs all five ops into instr_field0, which saturates with it).
        assert!(
            binding.iter().any(|n| n.starts_with("add_")),
            "adder resources saturate: {binding:?}"
        );
        assert!(
            binding.iter().all(|n| n.starts_with("add_") || n.starts_with("instr_field")),
            "nothing else saturates: {binding:?}"
        );
    }

    #[test]
    fn res_mii_of_empty_loop_is_one() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        let mut c = Counters::new();
        assert_eq!(res_mii(&p, &mut c), 1);
    }

    #[test]
    fn rec_mii_simple_recurrence() {
        // a -> b (delay 4) -> a (delay 3, distance 2): RecMII = ceil(7/2)=4.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 4, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 3, 2, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        assert_eq!(rec_mii(&p, 1, &mut c), 4);
        assert!(c.mindist_work > 0);
        // Cross-check with circuit enumeration.
        assert_eq!(rec_mii_by_circuits(&p, 1000), Some(4));
    }

    #[test]
    fn rec_mii_self_edge() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 5, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        assert_eq!(rec_mii(&p, 1, &mut c), 5);
        assert_eq!(rec_mii_by_circuits(&p, 1000), Some(5));
    }

    #[test]
    fn rec_mii_takes_worst_scc() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, a, 3, 1, DepKind::Flow, false);
        pb.add_dep(b, b, 7, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        assert_eq!(rec_mii(&p, 1, &mut c), 7);
    }

    #[test]
    fn rec_mii_acyclic_is_lower() {
        let m = minimal();
        let p = straight_line(&m, &[Opcode::Add, Opcode::Mul]);
        let mut c = Counters::new();
        assert_eq!(rec_mii(&p, 1, &mut c), 1);
        assert_eq!(rec_mii(&p, 5, &mut c), 5); // respects the seed
    }

    #[test]
    fn rec_mii_seeded_skips_probing() {
        // When the seed already satisfies the recurrence, no search happens.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 3, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        assert_eq!(rec_mii(&p, 10, &mut c), 10);
    }

    #[test]
    fn compute_mii_combines_bounds() {
        let m = minimal();
        // 3 ops on one unit (ResMII 3) + a distance-1, delay-5 recurrence
        // (RecMII 5).
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        let cnode = pb.add_op(Opcode::Add, OpId(2));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, cnode, 1, 0, DepKind::Flow, false);
        pb.add_dep(cnode, a, 3, 1, DepKind::Flow, false);
        let p = pb.finish();
        let mut c = Counters::new();
        let mii = compute_mii(&p, &mut c);
        assert_eq!(mii.res_mii, 3);
        assert_eq!(mii.rec_mii, 5);
        assert_eq!(mii.mii, 5);
    }

    #[test]
    fn circuits_cross_check_declines_when_truncated() {
        // Complete digraph: too many circuits for the cap.
        let m = wide(8);
        let mut pb = ProblemBuilder::new(&m);
        let ns: Vec<NodeId> = (0..6)
            .map(|i| pb.add_op(Opcode::Add, OpId(i)))
            .collect();
        for &x in &ns {
            for &y in &ns {
                if x != y {
                    pb.add_dep(x, y, 1, 1, DepKind::Flow, false);
                }
            }
        }
        let p = pb.finish();
        assert_eq!(rec_mii_by_circuits(&p, 10), None);
    }
}
