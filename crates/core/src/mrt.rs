//! The modulo reservation table (§3.1).
//!
//! *"If scheduling an operation at some particular time involves the use of
//! resource R at time T, then location ((T mod II), R) of the table is used
//! to record it. Consequently, the schedule reservation table need only be
//! as long as the II."*

use std::cell::Cell;

use ims_graph::NodeId;
use ims_machine::ReservationTable;

/// A modulo reservation table: `II × num_resources` slots, each holding the
/// node currently reserving it (if any).
///
/// # Example
///
/// A reservation at time `T` blocks every time congruent to `T` modulo the
/// II — the property that makes the table II rows long (§3.1):
///
/// ```
/// use ims_core::Mrt;
/// use ims_graph::NodeId;
/// use ims_machine::{ReservationTable, ResourceId};
///
/// let mut mrt = Mrt::new(3, 1);
/// let table = ReservationTable::new(vec![(ResourceId(0), 0)]);
/// mrt.place(NodeId(1), &table, 1);
/// assert!(mrt.conflicts(&table, 4)); // 4 ≡ 1 (mod 3)
/// assert!(!mrt.conflicts(&table, 2));
/// mrt.remove(NodeId(1), &table, 1);
/// assert!(!mrt.conflicts(&table, 4));
/// ```
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: i64,
    nres: usize,
    slots: Vec<Option<NodeId>>,
    /// Deterministic probe-work odometer: the summed
    /// [`footprint`](ReservationTable::footprint) of every table handed to
    /// [`Mrt::conflicts`] / [`Mrt::conflicting_nodes_into`]. A `Cell` so
    /// the read-only probe methods stay `&self`; charged up front so the
    /// count does not depend on where a conflict check short-circuits.
    probes: Cell<u64>,
}

/// Equality compares the schedule state (II, resources, reservations) and
/// deliberately ignores the probe odometer, which is bookkeeping about how
/// the table was *used*, not what it holds.
impl PartialEq for Mrt {
    fn eq(&self, other: &Self) -> bool {
        self.ii == other.ii && self.nres == other.nres && self.slots == other.slots
    }
}

impl Eq for Mrt {}

impl Mrt {
    /// Creates an empty table for the given II and resource count.
    ///
    /// # Panics
    ///
    /// Panics if `ii < 1`.
    pub fn new(ii: i64, num_resources: usize) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        Mrt {
            ii,
            nres: num_resources,
            slots: vec![None; (ii as usize) * num_resources],
            probes: Cell::new(0),
        }
    }

    /// Total probe work performed so far (see the `probes` field): one unit
    /// per `(resource, offset)` pair of every probed reservation table.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// The II this table was sized for.
    pub fn ii(&self) -> i64 {
        self.ii
    }

    fn slot(&self, time: i64, res: usize) -> usize {
        let row = time.rem_euclid(self.ii) as usize;
        row * self.nres + res
    }

    /// Whether issuing an operation with reservation `table` at `time`
    /// collides with any current reservation.
    pub fn conflicts(&self, table: &ReservationTable, time: i64) -> bool {
        self.probes.set(self.probes.get() + table.footprint());
        table
            .uses()
            .iter()
            .any(|&(r, off)| self.slots[self.slot(time + off as i64, r.index())].is_some())
    }

    /// The distinct nodes whose reservations collide with `table` at
    /// `time`, written into the caller-provided scratch buffer (cleared
    /// first, then sorted ascending).
    ///
    /// This runs on the scheduler's eviction hot path for every forced
    /// placement, so deduplication happens in place on the reused scratch:
    /// no allocation once the buffer has grown to the (small) maximum
    /// number of uses in a reservation table.
    pub fn conflicting_nodes_into(
        &self,
        table: &ReservationTable,
        time: i64,
        out: &mut Vec<NodeId>,
    ) {
        self.probes.set(self.probes.get() + table.footprint());
        out.clear();
        for &(r, off) in table.uses() {
            if let Some(node) = self.slots[self.slot(time + off as i64, r.index())] {
                if !out.contains(&node) {
                    out.push(node);
                }
            }
        }
        out.sort_unstable();
    }

    /// The distinct nodes whose reservations collide with `table` at
    /// `time`. Convenience wrapper over [`Mrt::conflicting_nodes_into`]
    /// that allocates a fresh buffer.
    pub fn conflicting_nodes(&self, table: &ReservationTable, time: i64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.conflicting_nodes_into(table, time, &mut out);
        out
    }

    /// Reserves `table` at `time` for `node`.
    ///
    /// # Panics
    ///
    /// Panics if any required slot is already reserved; check
    /// [`Mrt::conflicts`] first.
    pub fn place(&mut self, node: NodeId, table: &ReservationTable, time: i64) {
        for &(r, off) in table.uses() {
            let s = self.slot(time + off as i64, r.index());
            assert!(
                self.slots[s].is_none(),
                "MRT slot already reserved while placing {node}"
            );
            self.slots[s] = Some(node);
        }
    }

    /// Releases the reservation `table` made at `time` by `node`
    /// (the exact inverse of [`Mrt::place`]; §2.1: *"When backtracking, an
    /// operation may be 'unscheduled' by reversing this process"*).
    ///
    /// # Panics
    ///
    /// Panics if a slot does not currently belong to `node`.
    pub fn remove(&mut self, node: NodeId, table: &ReservationTable, time: i64) {
        for &(r, off) in table.uses() {
            let s = self.slot(time + off as i64, r.index());
            assert_eq!(
                self.slots[s],
                Some(node),
                "MRT slot not owned by {node} during unschedule"
            );
            self.slots[s] = None;
        }
    }

    /// The node reserving `(time mod II, resource)`, if any. Used by the
    /// validator and display code.
    pub fn occupant(&self, time: i64, res: usize) -> Option<NodeId> {
        self.slots[self.slot(time, res)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_machine::ResourceId;

    fn table(uses: &[(u32, u32)]) -> ReservationTable {
        ReservationTable::new(uses.iter().map(|&(r, t)| (ResourceId(r), t)).collect())
    }

    #[test]
    fn modulo_wraparound_conflicts() {
        let mut mrt = Mrt::new(3, 2);
        let t = table(&[(0, 0)]);
        mrt.place(NodeId(1), &t, 1);
        // Time 4 ≡ 1 (mod 3): conflicts.
        assert!(mrt.conflicts(&t, 4));
        // The paper: "a conflict at time T implies conflicts at all times
        // T + k*II".
        assert!(mrt.conflicts(&t, 7));
        assert!(!mrt.conflicts(&t, 2));
        assert_eq!(mrt.occupant(4, 0), Some(NodeId(1)));
    }

    #[test]
    fn multi_use_tables_reserve_every_slot() {
        let mut mrt = Mrt::new(4, 2);
        let complex = table(&[(0, 0), (1, 2)]);
        mrt.place(NodeId(5), &complex, 1);
        assert_eq!(mrt.occupant(1, 0), Some(NodeId(5)));
        assert_eq!(mrt.occupant(3, 1), Some(NodeId(5)));
        // A simple table on resource 1 at a time congruent to 3 conflicts.
        let simple = table(&[(1, 0)]);
        assert!(mrt.conflicts(&simple, 3));
        assert!(mrt.conflicts(&simple, 7));
        assert!(!mrt.conflicts(&simple, 0));
    }

    #[test]
    fn conflicting_nodes_deduplicates() {
        let mut mrt = Mrt::new(2, 2);
        let wide = table(&[(0, 0), (1, 0)]);
        mrt.place(NodeId(3), &wide, 0);
        let probe = table(&[(0, 0), (1, 0)]);
        assert_eq!(mrt.conflicting_nodes(&probe, 2), vec![NodeId(3)]);
        assert!(mrt.conflicting_nodes(&probe, 1).is_empty());
    }

    #[test]
    fn conflicting_nodes_into_reuses_scratch_and_dedups_duplicate_resources() {
        // A probe table that hits the same resource at several offsets must
        // report each colliding owner exactly once, sorted, and leave stale
        // scratch contents behind it.
        let mut mrt = Mrt::new(3, 2);
        mrt.place(NodeId(7), &table(&[(0, 0), (0, 1), (0, 2)]), 0);
        mrt.place(NodeId(2), &table(&[(1, 0)]), 1);
        // Resource 0 probed at three offsets (all owned by node 7) plus
        // resource 1 at offset 1 (owned by node 2).
        let probe = table(&[(0, 0), (0, 1), (0, 2), (1, 1)]);
        let mut scratch = vec![NodeId(99)]; // stale content must be cleared
        mrt.conflicting_nodes_into(&probe, 0, &mut scratch);
        assert_eq!(scratch, vec![NodeId(2), NodeId(7)]);
        // Reuse: a conflict-free probe empties the same buffer.
        let free = table(&[(1, 0)]);
        mrt.conflicting_nodes_into(&free, 0, &mut scratch);
        assert!(scratch.is_empty());
        // The allocating wrapper agrees.
        assert_eq!(mrt.conflicting_nodes(&probe, 0), vec![NodeId(2), NodeId(7)]);
    }

    #[test]
    fn remove_restores_slots() {
        let mut mrt = Mrt::new(3, 1);
        let t = table(&[(0, 0), (0, 1)]);
        mrt.place(NodeId(2), &t, 0);
        assert!(mrt.conflicts(&t, 0));
        mrt.remove(NodeId(2), &t, 0);
        assert!(!mrt.conflicts(&t, 0));
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_place_panics() {
        let mut mrt = Mrt::new(2, 1);
        let t = table(&[(0, 0)]);
        mrt.place(NodeId(1), &t, 0);
        mrt.place(NodeId(2), &t, 2); // 2 ≡ 0 (mod 2)
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn remove_wrong_owner_panics() {
        let mut mrt = Mrt::new(2, 1);
        let t = table(&[(0, 0)]);
        mrt.place(NodeId(1), &t, 0);
        mrt.remove(NodeId(2), &t, 0);
    }

    #[test]
    fn probe_work_is_charged_up_front_and_ignored_by_equality() {
        let mut mrt = Mrt::new(3, 2);
        let wide = table(&[(0, 0), (1, 1)]);
        mrt.place(NodeId(1), &wide, 0);
        assert_eq!(mrt.probes(), 0, "place is not a probe");
        // A conflicting probe and a free probe cost the same: the full
        // footprint, regardless of short-circuiting.
        assert!(mrt.conflicts(&wide, 0));
        assert!(!mrt.conflicts(&wide, 1));
        assert_eq!(mrt.probes(), 2 * wide.footprint());
        mrt.conflicting_nodes_into(&wide, 0, &mut Vec::new());
        assert_eq!(mrt.probes(), 3 * wide.footprint());
        // Equality sees only the schedule state.
        let mut fresh = Mrt::new(3, 2);
        fresh.place(NodeId(1), &wide, 0);
        assert_eq!(mrt, fresh);
        assert_ne!(mrt.probes(), fresh.probes());
    }

    #[test]
    fn negative_times_wrap_correctly() {
        // rem_euclid keeps slots non-negative even for negative probe times
        // (delays can be negative, so probes may go below zero).
        let mut mrt = Mrt::new(3, 1);
        let t = table(&[(0, 0)]);
        mrt.place(NodeId(1), &t, 0);
        assert!(mrt.conflicts(&t, -3));
        assert!(!mrt.conflicts(&t, -2));
    }
}
