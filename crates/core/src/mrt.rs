//! The modulo reservation table (§3.1), word-parallel.
//!
//! *"If scheduling an operation at some particular time involves the use of
//! resource R at time T, then location ((T mod II), R) of the table is used
//! to record it. Consequently, the schedule reservation table need only be
//! as long as the II."*
//!
//! The table keeps two representations of the same state, updated in
//! lockstep (the invariant of `DESIGN.md` §5d):
//!
//! * an **occupancy bitset** — one group of `words_per_row` `u64` words
//!   per MRT row, bit `r mod 64` of word `r / 64` set ⟺ resource `r` is
//!   reserved in that row. Probes AND a [`ConflictMask`]'s precompiled
//!   `(offset, word, mask)` entries against these words: the
//!   FindTimeSlot/ResourceConflict hot path (§5–6 of the paper) costs a
//!   handful of word operations instead of a per-resource scan.
//! * an **owner array** — `Option<NodeId>` per `(row, resource)` cell,
//!   serving [`Mrt::occupant`], [`Mrt::conflicting_nodes_into`] (which
//!   walks only the *hit* bits of a probe), and the retained scan
//!   reference probe [`Mrt::conflicts_scan`] that the property suite
//!   checks the bitset against.
//!
//! Probe cost accounting is unchanged from the scan representation: every
//! probe charges the probing table's full
//! [`footprint`](ReservationTable::footprint) up front, so the
//! `machine.mrt.probes` counter is byte-identical to the pre-bitset
//! encoding.

use std::cell::Cell;

use ims_graph::NodeId;
use ims_machine::{ConflictMask, ReservationTable};

/// A modulo reservation table: `II × num_resources` cells tracked as an
/// occupancy bitset (for word-parallel probes) plus per-cell owners.
///
/// # Example
///
/// A reservation at time `T` blocks every time congruent to `T` modulo the
/// II — the property that makes the table II rows long (§3.1). Probes,
/// installs, and evicts all take the compiled [`ConflictMask`] of a
/// reservation table:
///
/// ```
/// use ims_core::Mrt;
/// use ims_graph::NodeId;
/// use ims_machine::{ConflictMask, ReservationTable, ResourceId};
///
/// let mut mrt = Mrt::new(3, 1);
/// let table = ReservationTable::new(vec![(ResourceId(0), 0)]);
/// let mask = ConflictMask::compile(&table, 1);
/// mrt.place(NodeId(1), &mask, 1);
/// assert!(mrt.conflicts(&mask, 4)); // 4 ≡ 1 (mod 3)
/// assert!(!mrt.conflicts(&mask, 2));
/// // The retained scan reference agrees with the bitset answer.
/// assert!(mrt.conflicts_scan(&table, 4));
/// mrt.remove(NodeId(1), &mask, 1);
/// assert!(!mrt.conflicts(&mask, 4));
/// ```
#[derive(Debug, Clone)]
pub struct Mrt {
    ii: i64,
    nres: usize,
    /// `⌈nres / 64⌉` (at least 1): the stride of one row's word group in
    /// `occ`. Must equal [`ConflictMask::words_per_row`] of every probed
    /// mask.
    wpr: usize,
    /// Occupancy bitset, **mirrored**: `2 × ii × wpr` words, row-major,
    /// with row `r` duplicated at row `r + ii`. A probe's row index
    /// `base + (off mod II)` lies in `[0, 2·II)` and indexes this buffer
    /// directly — no wrap-around compare on the hot path. The mirror
    /// copies are kept identical by [`Mrt::place`] / [`Mrt::remove`].
    occ: Vec<u64>,
    /// Owner per `(row, resource)` cell, `ii × nres`, row-major.
    slots: Vec<Option<NodeId>>,
    /// Deterministic probe-work odometer: the summed
    /// [`footprint`](ReservationTable::footprint) of every mask or table
    /// handed to [`Mrt::conflicts`] / [`Mrt::conflicting_nodes_into`] /
    /// [`Mrt::conflicts_scan`]. A `Cell` so the read-only probe methods
    /// stay `&self`; charged up front so the count does not depend on
    /// where a conflict check short-circuits.
    probes: Cell<u64>,
    /// `off_rows[o] = o mod II` for small cycle offsets: probes reduce
    /// each entry's offset by table lookup instead of a division — the
    /// division, not the resource walk, dominates a short probe. Offsets
    /// beyond the cache (none in the bundled machines) fall back to `%`.
    off_rows: Box<[u16]>,
    /// `(time, time mod II)` of the most recent probe, or `None` when no
    /// probe has run since construction or [`Mrt::clear`]. FindTimeSlot
    /// walks candidate times in unit steps and tries every alternative at
    /// each one, so the previous probe's row reduction is almost always
    /// reusable (same time, or time + 1) — the hit turns the base-row
    /// `rem_euclid` into an add-and-wrap and leaves most probes entirely
    /// division-free. A pure function of the probe time *for a fixed II*,
    /// so caching it cannot change any answer — but only because the
    /// sentinel is explicitly out of domain: an in-domain placeholder such
    /// as `(0, 0)` would be silently trusted for `time == 0` after a
    /// clear/resize changed the II out from under it. A `Cell` for the
    /// same reason as `probes`.
    base_cache: Cell<Option<(i64, usize)>>,
}

/// Cycle offsets `0..=OFF_CACHE` have their `mod II` reduction
/// precomputed per [`Mrt`]; larger offsets divide. Covers every
/// reservation table in the repo (the deepest is the 20-cycle Cydra
/// load) with headroom.
const OFF_CACHE: u32 = 63;

/// Equality compares the schedule state (II, resources, reservations) and
/// deliberately ignores the probe odometer, which is bookkeeping about how
/// the table was *used*, not what it holds. The occupancy bitset is
/// derived state (it always mirrors the owner array) and is not compared
/// separately.
impl PartialEq for Mrt {
    fn eq(&self, other: &Self) -> bool {
        self.ii == other.ii && self.nres == other.nres && self.slots == other.slots
    }
}

impl Eq for Mrt {}

impl Mrt {
    /// Creates an empty table for the given II and resource count.
    ///
    /// # Panics
    ///
    /// Panics if `ii < 1`.
    pub fn new(ii: i64, num_resources: usize) -> Self {
        assert!(ii >= 1, "II must be at least 1");
        let wpr = num_resources.div_ceil(64).max(1);
        Mrt {
            ii,
            nres: num_resources,
            wpr,
            occ: vec![0; 2 * (ii as usize) * wpr],
            slots: vec![None; (ii as usize) * num_resources],
            probes: Cell::new(0),
            off_rows: (0..=OFF_CACHE).map(|o| (o as i64 % ii) as u16).collect(),
            base_cache: Cell::new(None),
        }
    }

    /// Empties the table in place for reuse at the same II: zeroes the
    /// occupancy bitset (both mirror halves) and the owner array, and
    /// invalidates the probe-time base cache. The probe odometer is *not*
    /// reset — it counts work performed over the table's lifetime, and
    /// clearing is not a probe.
    pub fn clear(&mut self) {
        self.occ.fill(0);
        self.slots.fill(None);
        self.base_cache.set(None);
    }

    /// Resizes the table to a new II, dropping every reservation and
    /// invalidating the probe-time base cache (whose cached reduction was
    /// taken modulo the *old* II). Resource count and the probe odometer
    /// are preserved.
    ///
    /// # Panics
    ///
    /// Panics if `ii < 1`.
    pub fn resize(&mut self, ii: i64) {
        assert!(ii >= 1, "II must be at least 1");
        self.ii = ii;
        self.occ.clear();
        self.occ.resize(2 * (ii as usize) * self.wpr, 0);
        self.slots.clear();
        self.slots.resize((ii as usize) * self.nres, None);
        self.off_rows = (0..=OFF_CACHE).map(|o| (o as i64 % ii) as u16).collect();
        self.base_cache.set(None);
    }

    /// Total probe work performed so far (see the `probes` field): one unit
    /// per `(resource, offset)` pair of every probed reservation table.
    pub fn probes(&self) -> u64 {
        self.probes.get()
    }

    /// The II this table was sized for.
    pub fn ii(&self) -> i64 {
        self.ii
    }

    /// The occupancy bitset: `II × words_per_row` words, row-major; bit
    /// `r mod 64` of word `row · words_per_row + r / 64` set ⟺ resource
    /// `r` is reserved in `row`. A canonical, allocation-free image of
    /// the reservation state — the exact backend keys its failed-state
    /// memoization on a copy of this slice.
    pub fn occupancy_words(&self) -> &[u64] {
        &self.occ[..self.ii as usize * self.wpr]
    }

    /// The MRT row a probe at `time` with cycle offset `off` lands in.
    /// One division per call; the mask paths use [`Mrt::base_row`] +
    /// [`Mrt::row_from`] to divide once per *probe* instead.
    #[inline]
    fn row(&self, time: i64, off: u32) -> usize {
        (time + off as i64).rem_euclid(self.ii) as usize
    }

    /// The MRT row of `time` itself, through the `base_cache`: division
    /// only when the probe time is neither the previous probe's time nor
    /// its successor.
    #[inline]
    fn base_row(&self, time: i64) -> usize {
        let base = match self.base_cache.get() {
            Some((t0, b0)) if time == t0 => return b0,
            Some((t0, b0)) if time == t0.wrapping_add(1) => {
                let b = b0 + 1;
                if b == self.ii as usize {
                    0
                } else {
                    b
                }
            }
            _ => time.rem_euclid(self.ii) as usize,
        };
        self.base_cache.set(Some((time, base)));
        base
    }

    /// The *unmirrored* row index `off` cycles after a [`Mrt::base_row`]:
    /// `base + (off mod II)`, in `[0, 2·II)`. Valid directly into the
    /// mirrored `occ` buffer; fold with [`Mrt::wrap`] before touching the
    /// single-height owner array.
    #[inline]
    fn row_from(&self, base: usize, off: u32) -> usize {
        base + match self.off_rows.get(off as usize) {
            Some(&r) => r as usize,
            None => (off as i64 % self.ii) as usize,
        }
    }

    /// Folds an unmirrored row from [`Mrt::row_from`] back into `[0, II)`.
    #[inline]
    fn wrap(&self, row: usize) -> usize {
        if row >= self.ii as usize {
            row - self.ii as usize
        } else {
            row
        }
    }

    /// Whether issuing an operation with compiled reservation `mask` at
    /// `time` collides with any current reservation: one AND per mask
    /// entry against the occupancy words.
    ///
    /// In debug builds the bitset answer is asserted against the owner
    /// array (the §5d agreement invariant).
    pub fn conflicts(&self, mask: &ConflictMask, time: i64) -> bool {
        debug_assert_eq!(mask.words_per_row(), self.wpr, "mask compiled for another machine");
        self.probes.set(self.probes.get() + mask.footprint());
        let base = self.base_row(time);
        let hit = mask.entries().iter().any(|e| {
            self.occ[self.row_from(base, e.offset) * self.wpr + e.word as usize] & e.mask != 0
        });
        debug_assert_eq!(hit, self.owner_scan_conflicts(mask, time));
        hit
    }

    /// Reference probe retained from the pre-bitset encoding: scans the
    /// owner array one `(resource, offset)` pair at a time. Charges the
    /// same probe cost as [`Mrt::conflicts`] and, by the §5d invariant,
    /// always returns the same answer for a mask compiled from `table` —
    /// the property suite's equivalence oracle
    /// (`crates/core/tests/prop.rs`) holds the two representations to it.
    pub fn conflicts_scan(&self, table: &ReservationTable, time: i64) -> bool {
        self.probes.set(self.probes.get() + table.footprint());
        table
            .uses()
            .iter()
            .any(|&(r, off)| self.slots[self.row(time, off) * self.nres + r.index()].is_some())
    }

    /// The owner-array view of a mask probe, used by the debug agreement
    /// assertion in [`Mrt::conflicts`]. Not charged as probe work.
    fn owner_scan_conflicts(&self, mask: &ConflictMask, time: i64) -> bool {
        mask.entries().iter().any(|e| {
            let row = self.row(time, e.offset);
            let mut bits = e.mask;
            while bits != 0 {
                let r = e.word as usize * 64 + bits.trailing_zeros() as usize;
                if self.slots[row * self.nres + r].is_some() {
                    return true;
                }
                bits &= bits - 1;
            }
            false
        })
    }

    /// The distinct nodes whose reservations collide with `mask` at
    /// `time`, written into the caller-provided scratch buffer (cleared
    /// first, then sorted ascending).
    ///
    /// This runs on the scheduler's eviction hot path for every forced
    /// placement, so it reads the *hit* bits directly — the owner array
    /// is consulted only for cells the AND proves occupied — and
    /// deduplication happens in place on the reused scratch: no
    /// allocation once the buffer has grown to the (small) maximum
    /// number of colliding nodes.
    pub fn conflicting_nodes_into(&self, mask: &ConflictMask, time: i64, out: &mut Vec<NodeId>) {
        debug_assert_eq!(mask.words_per_row(), self.wpr, "mask compiled for another machine");
        self.probes.set(self.probes.get() + mask.footprint());
        out.clear();
        let base = self.base_row(time);
        for e in mask.entries() {
            let urow = self.row_from(base, e.offset);
            let mut hits = self.occ[urow * self.wpr + e.word as usize] & e.mask;
            let row = self.wrap(urow);
            while hits != 0 {
                let r = e.word as usize * 64 + hits.trailing_zeros() as usize;
                let node = self.slots[row * self.nres + r]
                    .expect("occupancy bit set implies an owner (§5d invariant)");
                if !out.contains(&node) {
                    out.push(node);
                }
                hits &= hits - 1;
            }
        }
        out.sort_unstable();
    }

    /// The distinct nodes whose reservations collide with `mask` at
    /// `time`. Convenience wrapper over [`Mrt::conflicting_nodes_into`]
    /// that allocates a fresh buffer.
    pub fn conflicting_nodes(&self, mask: &ConflictMask, time: i64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.conflicting_nodes_into(mask, time, &mut out);
        out
    }

    /// Reserves `mask` at `time` for `node`: OR the mask words into the
    /// occupancy bitset and record `node` as owner of each covered cell.
    ///
    /// # Panics
    ///
    /// Panics if any required cell is already reserved; check
    /// [`Mrt::conflicts`] first.
    pub fn place(&mut self, node: NodeId, mask: &ConflictMask, time: i64) {
        debug_assert_eq!(mask.words_per_row(), self.wpr, "mask compiled for another machine");
        let base = self.base_row(time);
        let ii = self.ii as usize;
        for e in mask.entries() {
            let row = self.wrap(self.row_from(base, e.offset));
            let w = row * self.wpr + e.word as usize;
            assert!(
                self.occ[w] & e.mask == 0,
                "MRT slot already reserved while placing {node}"
            );
            self.occ[w] |= e.mask;
            self.occ[w + ii * self.wpr] |= e.mask;
            let mut bits = e.mask;
            while bits != 0 {
                let r = e.word as usize * 64 + bits.trailing_zeros() as usize;
                self.slots[row * self.nres + r] = Some(node);
                bits &= bits - 1;
            }
        }
    }

    /// Releases the reservation `mask` made at `time` by `node`
    /// (the exact inverse of [`Mrt::place`]; §2.1: *"When backtracking, an
    /// operation may be 'unscheduled' by reversing this process"*):
    /// AND-NOT the mask words out of the occupancy bitset and clear the
    /// owners.
    ///
    /// # Panics
    ///
    /// Panics if a cell does not currently belong to `node`.
    pub fn remove(&mut self, node: NodeId, mask: &ConflictMask, time: i64) {
        debug_assert_eq!(mask.words_per_row(), self.wpr, "mask compiled for another machine");
        let base = self.base_row(time);
        let ii = self.ii as usize;
        for e in mask.entries() {
            let row = self.wrap(self.row_from(base, e.offset));
            let mut bits = e.mask;
            while bits != 0 {
                let r = e.word as usize * 64 + bits.trailing_zeros() as usize;
                let cell = &mut self.slots[row * self.nres + r];
                assert_eq!(
                    *cell,
                    Some(node),
                    "MRT slot not owned by {node} during unschedule"
                );
                *cell = None;
                bits &= bits - 1;
            }
            let w = row * self.wpr + e.word as usize;
            self.occ[w] &= !e.mask;
            self.occ[w + ii * self.wpr] &= !e.mask;
        }
    }

    /// The node reserving `(time mod II, resource)`, if any. Used by the
    /// validator and display code.
    pub fn occupant(&self, time: i64, res: usize) -> Option<NodeId> {
        self.slots[self.row(time, 0) * self.nres + res]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_machine::ResourceId;

    const NRES: usize = 4;

    fn table(uses: &[(u32, u32)]) -> ReservationTable {
        ReservationTable::new(uses.iter().map(|&(r, t)| (ResourceId(r), t)).collect())
    }

    fn mask(uses: &[(u32, u32)]) -> ConflictMask {
        ConflictMask::compile(&table(uses), NRES)
    }

    #[test]
    fn modulo_wraparound_conflicts() {
        let mut mrt = Mrt::new(3, NRES);
        let t = mask(&[(0, 0)]);
        mrt.place(NodeId(1), &t, 1);
        // Time 4 ≡ 1 (mod 3): conflicts.
        assert!(mrt.conflicts(&t, 4));
        // The paper: "a conflict at time T implies conflicts at all times
        // T + k*II".
        assert!(mrt.conflicts(&t, 7));
        assert!(!mrt.conflicts(&t, 2));
        assert_eq!(mrt.occupant(4, 0), Some(NodeId(1)));
    }

    #[test]
    fn multi_use_tables_reserve_every_slot() {
        let mut mrt = Mrt::new(4, NRES);
        let complex = mask(&[(0, 0), (1, 2)]);
        mrt.place(NodeId(5), &complex, 1);
        assert_eq!(mrt.occupant(1, 0), Some(NodeId(5)));
        assert_eq!(mrt.occupant(3, 1), Some(NodeId(5)));
        // A simple table on resource 1 at a time congruent to 3 conflicts.
        let simple = mask(&[(1, 0)]);
        assert!(mrt.conflicts(&simple, 3));
        assert!(mrt.conflicts(&simple, 7));
        assert!(!mrt.conflicts(&simple, 0));
    }

    #[test]
    fn conflicting_nodes_deduplicates() {
        let mut mrt = Mrt::new(2, NRES);
        let wide = mask(&[(0, 0), (1, 0)]);
        mrt.place(NodeId(3), &wide, 0);
        let probe = mask(&[(0, 0), (1, 0)]);
        assert_eq!(mrt.conflicting_nodes(&probe, 2), vec![NodeId(3)]);
        assert!(mrt.conflicting_nodes(&probe, 1).is_empty());
    }

    #[test]
    fn conflicting_nodes_into_reuses_scratch_and_dedups_duplicate_resources() {
        // A probe table that hits the same resource at several offsets must
        // report each colliding owner exactly once, sorted, and leave stale
        // scratch contents behind it.
        let mut mrt = Mrt::new(3, NRES);
        mrt.place(NodeId(7), &mask(&[(0, 0), (0, 1), (0, 2)]), 0);
        mrt.place(NodeId(2), &mask(&[(1, 0)]), 1);
        // Resource 0 probed at three offsets (all owned by node 7) plus
        // resource 1 at offset 1 (owned by node 2).
        let probe = mask(&[(0, 0), (0, 1), (0, 2), (1, 1)]);
        let mut scratch = vec![NodeId(99)]; // stale content must be cleared
        mrt.conflicting_nodes_into(&probe, 0, &mut scratch);
        assert_eq!(scratch, vec![NodeId(2), NodeId(7)]);
        // Reuse: a conflict-free probe empties the same buffer.
        let free = mask(&[(1, 0)]);
        mrt.conflicting_nodes_into(&free, 0, &mut scratch);
        assert!(scratch.is_empty());
        // The allocating wrapper agrees.
        assert_eq!(mrt.conflicting_nodes(&probe, 0), vec![NodeId(2), NodeId(7)]);
    }

    #[test]
    fn remove_restores_slots() {
        let mut mrt = Mrt::new(3, 1);
        let t = ConflictMask::compile(&table(&[(0, 0), (0, 1)]), 1);
        mrt.place(NodeId(2), &t, 0);
        assert!(mrt.conflicts(&t, 0));
        mrt.remove(NodeId(2), &t, 0);
        assert!(!mrt.conflicts(&t, 0));
        assert!(mrt.occupancy_words().iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "already reserved")]
    fn double_place_panics() {
        let mut mrt = Mrt::new(2, 1);
        let t = ConflictMask::compile(&table(&[(0, 0)]), 1);
        mrt.place(NodeId(1), &t, 0);
        mrt.place(NodeId(2), &t, 2); // 2 ≡ 0 (mod 2)
    }

    #[test]
    #[should_panic(expected = "not owned")]
    fn remove_wrong_owner_panics() {
        let mut mrt = Mrt::new(2, 1);
        let t = ConflictMask::compile(&table(&[(0, 0)]), 1);
        mrt.place(NodeId(1), &t, 0);
        mrt.remove(NodeId(2), &t, 0);
    }

    #[test]
    fn probe_work_is_charged_up_front_and_ignored_by_equality() {
        let mut mrt = Mrt::new(3, NRES);
        let wide_t = table(&[(0, 0), (1, 1)]);
        let wide = ConflictMask::compile(&wide_t, NRES);
        mrt.place(NodeId(1), &wide, 0);
        assert_eq!(mrt.probes(), 0, "place is not a probe");
        // A conflicting probe and a free probe cost the same: the full
        // footprint, regardless of short-circuiting.
        assert!(mrt.conflicts(&wide, 0));
        assert!(!mrt.conflicts(&wide, 1));
        assert_eq!(mrt.probes(), 2 * wide.footprint());
        mrt.conflicting_nodes_into(&wide, 0, &mut Vec::new());
        assert_eq!(mrt.probes(), 3 * wide.footprint());
        // The scan reference charges the identical cost per probe.
        assert!(mrt.conflicts_scan(&wide_t, 0));
        assert_eq!(mrt.probes(), 4 * wide.footprint());
        // Equality sees only the schedule state.
        let mut fresh = Mrt::new(3, NRES);
        fresh.place(NodeId(1), &wide, 0);
        assert_eq!(mrt, fresh);
        assert_ne!(mrt.probes(), fresh.probes());
    }

    #[test]
    fn negative_times_wrap_correctly() {
        // rem_euclid keeps rows non-negative even for negative probe times
        // (delays can be negative, so probes may go below zero).
        let mut mrt = Mrt::new(3, 1);
        let t = ConflictMask::compile(&table(&[(0, 0)]), 1);
        mrt.place(NodeId(1), &t, 0);
        assert!(mrt.conflicts(&t, -3));
        assert!(!mrt.conflicts(&t, -2));
    }

    #[test]
    fn bitset_and_scan_agree_on_a_mixed_history() {
        // Pin the §5d agreement invariant on a small hand-built history;
        // the property suite fuzzes the same invariant at scale.
        let mut mrt = Mrt::new(5, NRES);
        let shapes: [&[(u32, u32)]; 3] =
            [&[(0, 0), (1, 3)], &[(2, 0), (2, 1), (2, 2)], &[(3, 4)]];
        for (i, s) in shapes.iter().enumerate() {
            let m = mask(s);
            if !mrt.conflicts(&m, i as i64) {
                mrt.place(NodeId(i as u32), &m, i as i64);
            }
        }
        for s in &shapes {
            for t in -5..15 {
                assert_eq!(mrt.conflicts(&mask(s), t), mrt.conflicts_scan(&table(s), t));
            }
        }
    }

    #[test]
    fn clear_empties_the_table_and_keeps_the_odometer() {
        let mut mrt = Mrt::new(3, NRES);
        let t = mask(&[(0, 0), (1, 1)]);
        mrt.place(NodeId(1), &t, 1);
        assert!(mrt.conflicts(&t, 4));
        let spent = mrt.probes();
        assert!(spent > 0);
        mrt.clear();
        assert!(mrt.occupancy_words().iter().all(|&w| w == 0));
        for time in -3..6 {
            assert!(!mrt.conflicts(&t, time), "stale reservation at {time}");
        }
        assert_eq!(mrt.occupant(1, 0), None);
        // Clearing is not a probe; the lifetime odometer keeps counting.
        assert!(mrt.probes() > spent);
        // The cleared table is reusable.
        mrt.place(NodeId(2), &t, 2);
        assert!(mrt.conflicts(&t, 5));
    }

    #[test]
    fn resize_invalidates_the_cached_base_row() {
        let mut mrt = Mrt::new(3, 1);
        let t = ConflictMask::compile(&table(&[(0, 0)]), 1);
        // Warm the base cache with a reduction taken modulo the old II:
        // time 4 → row 1 at II 3, but row 4 at II 5.
        assert!(!mrt.conflicts(&t, 4));
        mrt.resize(5);
        assert_eq!(mrt.ii(), 5);
        assert_eq!(mrt.occupancy_words().len(), 5);
        // A stale cached (4, 1) would route this placement to row 1; the
        // owner array (indexed by a fresh division) proves it landed in
        // row 4.
        mrt.place(NodeId(1), &t, 4);
        assert_eq!(mrt.occupant(4, 0), Some(NodeId(1)));
        assert_eq!(mrt.occupant(1, 0), None);
        assert!(mrt.conflicts(&t, 9)); // 9 ≡ 4 (mod 5)
        assert!(!mrt.conflicts(&t, 1));
    }

    #[test]
    fn clear_then_increment_probe_does_not_reuse_a_stale_base() {
        // The increment-and-wrap fast path must not fire off a cleared
        // cache: probe time 2 (caches (2, 2) at II 3), clear, then probe
        // time 3 — a trusted stale entry would take the +1 path; either
        // way the answer must come out as a fresh reduction.
        let mut mrt = Mrt::new(3, 1);
        let t = ConflictMask::compile(&table(&[(0, 0)]), 1);
        assert!(!mrt.conflicts(&t, 2));
        mrt.clear();
        mrt.place(NodeId(1), &t, 3); // row 0
        assert_eq!(mrt.occupant(0, 0), Some(NodeId(1)));
        assert!(mrt.conflicts(&t, 0));
        assert!(mrt.conflicts(&t, 3));
        assert!(!mrt.conflicts(&t, 1));
    }

    #[test]
    fn occupancy_words_mirror_the_owner_array() {
        let mut mrt = Mrt::new(4, NRES);
        mrt.place(NodeId(9), &mask(&[(0, 0), (3, 1), (1, 5)]), 2);
        for row in 0..4usize {
            let word = mrt.occupancy_words()[row];
            for r in 0..NRES {
                let bit_set = word & (1 << r) != 0;
                assert_eq!(bit_set, mrt.occupant(row as i64, r).is_some(), "row {row} res {r}");
            }
        }
    }
}
