//! The scheduling problem: dependence graph + machine + node identities.

use ims_graph::{DepGraph, DepKind, NodeId};
use ims_ir::{OpId, Opcode};
use ims_machine::{MachineModel, OpcodeInfo};

/// What a dependence-graph node stands for.
///
/// §3.1: *"two pseudo-operations, START and STOP, are added to the
/// dependence graph. START and STOP are made to be the predecessor and
/// successor, respectively, of all the other operations in the graph."*
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NodeKind {
    /// The START pseudo-operation (always node 0; scheduled at time 0).
    Start,
    /// The STOP pseudo-operation (always the last node; its issue time is
    /// the schedule length).
    Stop,
    /// A real operation of the loop.
    Op {
        /// The opcode, which determines latency and alternatives.
        opcode: Opcode,
        /// The originating operation in the IR loop body.
        op: OpId,
    },
}

/// A complete modulo-scheduling problem: the dependence graph (with START
/// and STOP attached), the identity of each node, and the machine model.
///
/// Built with [`ProblemBuilder`].
#[derive(Debug)]
pub struct Problem<'m> {
    machine: &'m MachineModel,
    graph: DepGraph,
    kinds: Vec<NodeKind>,
    /// Dependence edges added by the front end, excluding the START/STOP
    /// scaffolding (this is the `E` of the paper's Table 4 statistics).
    real_edges: usize,
}

impl<'m> Problem<'m> {
    /// The machine model.
    pub fn machine(&self) -> &'m MachineModel {
        self.machine
    }

    /// The dependence graph, including START/STOP.
    pub fn graph(&self) -> &DepGraph {
        &self.graph
    }

    /// The START node.
    pub fn start(&self) -> NodeId {
        NodeId(0)
    }

    /// The STOP node.
    pub fn stop(&self) -> NodeId {
        NodeId(self.graph.num_nodes() as u32 - 1)
    }

    /// What `node` stands for.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn kind(&self, node: NodeId) -> NodeKind {
        self.kinds[node.index()]
    }

    /// Number of *real* operations, `N` in the paper's complexity analysis
    /// (excludes START and STOP).
    pub fn num_ops(&self) -> usize {
        self.graph.num_nodes() - 2
    }

    /// Number of real dependence edges, `E` in the paper's Table 4
    /// (excludes the START/STOP scaffolding edges).
    pub fn num_real_edges(&self) -> usize {
        self.real_edges
    }

    /// The real-operation nodes, in id order.
    pub fn op_nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (1..self.graph.num_nodes() as u32 - 1).map(NodeId)
    }

    /// Machine information for `node`, or `None` for START/STOP.
    pub fn info(&self, node: NodeId) -> Option<&OpcodeInfo> {
        match self.kind(node) {
            NodeKind::Op { opcode, .. } => Some(self.machine.info(opcode)),
            _ => None,
        }
    }

    /// The latency of `node` (0 for START/STOP).
    pub fn latency(&self, node: NodeId) -> i64 {
        self.info(node).map_or(0, |i| i.latency as i64)
    }
}

/// Builder for [`Problem`].
///
/// Add operations and dependence edges, then call
/// [`ProblemBuilder::finish`], which attaches START (predecessor of every
/// operation, delay 0) and STOP (successor of every operation, delay equal
/// to the operation's latency, so that STOP's issue time is the schedule
/// length and `MinDist[START, STOP]` is the schedule-length lower bound of
/// §4.2).
#[derive(Debug)]
pub struct ProblemBuilder<'m> {
    machine: &'m MachineModel,
    graph: DepGraph,
    kinds: Vec<NodeKind>,
    real_edges: usize,
}

impl<'m> ProblemBuilder<'m> {
    /// Starts a problem for `machine`. The START node is created
    /// immediately as node 0.
    pub fn new(machine: &'m MachineModel) -> Self {
        let mut graph = DepGraph::new();
        let start = graph.add_node();
        debug_assert_eq!(start, NodeId(0));
        ProblemBuilder {
            machine,
            graph,
            kinds: vec![NodeKind::Start],
            real_edges: 0,
        }
    }

    /// Adds a real operation.
    ///
    /// # Panics
    ///
    /// Panics if the machine does not implement `opcode`.
    pub fn add_op(&mut self, opcode: Opcode, op: OpId) -> NodeId {
        assert!(
            self.machine.get_info(opcode).is_some(),
            "machine {} does not implement {opcode}",
            self.machine.name()
        );
        let n = self.graph.add_node();
        self.kinds.push(NodeKind::Op { opcode, op });
        n
    }

    /// Adds a dependence edge with an explicit delay (see the Table 1
    /// delay formulas in `ims-deps`).
    pub fn add_dep(
        &mut self,
        from: NodeId,
        to: NodeId,
        delay: i64,
        distance: u32,
        kind: DepKind,
        is_mem: bool,
    ) {
        self.graph.add_edge(from, to, delay, distance, kind, is_mem);
        self.real_edges += 1;
    }

    /// Number of operations added so far.
    pub fn num_ops(&self) -> usize {
        self.kinds.len() - 1
    }

    /// Attaches START/STOP scaffolding and returns the finished problem.
    pub fn finish(mut self) -> Problem<'m> {
        let stop = self.graph.add_node();
        self.kinds.push(NodeKind::Stop);
        let start = NodeId(0);
        for node in 1..stop.0 {
            let node = NodeId(node);
            self.graph
                .add_edge(start, node, 0, 0, DepKind::Control, false);
            let lat = match self.kinds[node.index()] {
                NodeKind::Op { opcode, .. } => self.machine.latency(opcode) as i64,
                _ => 0,
            };
            self.graph
                .add_edge(node, stop, lat, 0, DepKind::Control, false);
        }
        // Degenerate (zero-op) problems still need START before STOP.
        self.graph.add_edge(start, stop, 0, 0, DepKind::Control, false);
        Problem {
            machine: self.machine,
            graph: self.graph,
            kinds: self.kinds,
            real_edges: self.real_edges,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ims_machine::minimal;

    #[test]
    fn start_stop_scaffolding() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        let p = pb.finish();

        assert_eq!(p.num_ops(), 2);
        assert_eq!(p.num_real_edges(), 1);
        assert_eq!(p.start(), NodeId(0));
        assert_eq!(p.stop(), NodeId(3));
        assert_eq!(p.kind(p.start()), NodeKind::Start);
        assert_eq!(p.kind(p.stop()), NodeKind::Stop);
        assert!(matches!(p.kind(a), NodeKind::Op { opcode: Opcode::Add, .. }));

        // START precedes both ops; both ops precede STOP with delay=latency.
        assert!(p.graph().succs(p.start()).any(|e| e.to == a));
        assert!(p.graph().succs(p.start()).any(|e| e.to == b));
        let to_stop: Vec<_> = p.graph().preds(p.stop()).collect();
        assert_eq!(to_stop.len(), 3); // a, b, and the start->stop edge
        assert!(p
            .graph()
            .succs(a)
            .any(|e| e.to == p.stop() && e.delay == 1));
    }

    #[test]
    fn latency_of_pseudo_ops_is_zero() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Load, OpId(0));
        let p = pb.finish();
        assert_eq!(p.latency(p.start()), 0);
        assert_eq!(p.latency(p.stop()), 0);
        assert_eq!(p.latency(a), 1);
        assert!(p.info(p.start()).is_none());
        assert!(p.info(a).is_some());
    }

    #[test]
    fn op_nodes_excludes_pseudo_ops() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let _ = pb.add_op(Opcode::Add, OpId(0));
        let _ = pb.add_op(Opcode::Add, OpId(1));
        let p = pb.finish();
        let ops: Vec<NodeId> = p.op_nodes().collect();
        assert_eq!(ops, vec![NodeId(1), NodeId(2)]);
    }

    #[test]
    fn empty_problem_is_well_formed() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        assert_eq!(p.num_ops(), 0);
        assert!(p.graph().succs(p.start()).any(|e| e.to == p.stop()));
    }

    #[test]
    #[should_panic(expected = "does not implement")]
    fn unknown_opcode_rejected() {
        use ims_machine::MachineBuilder;
        let m = MachineBuilder::new("empty").build();
        let mut pb = ProblemBuilder::new(&m);
        let _ = pb.add_op(Opcode::Add, OpId(0));
    }
}
