//! Instrumentation counters behind the paper's Table 4.
//!
//! §4.4 measures, per loop, *"the expected number of times the innermost
//! loop"* of each sub-activity executes and fits each count against N. The
//! scheduler threads a [`Counters`] value through every sub-activity so the
//! reproduction harness can redo those fits.

/// Per-loop work counts for each sub-activity of iterative modulo
/// scheduling, in the order of the paper's Table 4.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// SCC identification: nodes visited + edges examined (`O(N+E)`).
    pub scc_work: u64,
    /// ResMII calculation: resource usages inspected (`O(N)`).
    pub resmii_work: u64,
    /// MII calculation: innermost-loop executions of `ComputeMinDist`
    /// across all SCCs and all candidate IIs (the paper's `11.9133·N`
    /// fit).
    pub mindist_work: u64,
    /// HeightR calculation: edge relaxations performed (the paper's
    /// `4.5021·N` fit; worst case `O(NE)`).
    pub heightr_work: u64,
    /// Iterative scheduling, part 1: immediate predecessors examined while
    /// computing Estart (the paper's `3.3321·N` fit).
    pub estart_preds: u64,
    /// Iterative scheduling, part 2: candidate time slots examined in
    /// `FindTimeSlot` (the paper's `0.0587·N² + 0.2001·N + 0.5` fit).
    pub findslot_iters: u64,
    /// Iterative scheduling, part 3: operations displaced (unscheduled) by
    /// the §3.4 eviction policy — both resource-conflict evictions on
    /// forced placement and dependence-violation evictions of successors.
    /// Zero when every operation is scheduled exactly once (§4.3 reports
    /// that happens for 90% of the paper's loops).
    pub evictions: u64,
    /// Modulo reservation table probe work: summed reservation-table
    /// footprints over every conflict check (`FindTimeSlot` probes plus
    /// eviction scans). Charged per probe up front, so the count is
    /// deterministic even though conflict checks short-circuit.
    pub mrt_probes: u64,
}

impl Counters {
    /// A zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Element-wise accumulation (used when aggregating across loops).
    pub fn add(&mut self, other: &Counters) {
        self.scc_work += other.scc_work;
        self.resmii_work += other.resmii_work;
        self.mindist_work += other.mindist_work;
        self.heightr_work += other.heightr_work;
        self.estart_preds += other.estart_preds;
        self.findslot_iters += other.findslot_iters;
        self.evictions += other.evictions;
        self.mrt_probes += other.mrt_probes;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_accumulates_every_field() {
        let a = Counters {
            scc_work: 1,
            resmii_work: 2,
            mindist_work: 3,
            heightr_work: 4,
            estart_preds: 5,
            findslot_iters: 6,
            evictions: 7,
            mrt_probes: 8,
        };
        let mut b = a;
        b.add(&a);
        assert_eq!(
            b,
            Counters {
                scc_work: 2,
                resmii_work: 4,
                mindist_work: 6,
                heightr_work: 8,
                estart_preds: 10,
                findslot_iters: 12,
                evictions: 14,
                mrt_probes: 16,
            }
        );
    }

    #[test]
    fn new_is_zero() {
        assert_eq!(Counters::new(), Counters::default());
    }
}
