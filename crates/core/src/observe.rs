//! Event-level scheduler observability.
//!
//! The paper's §4 evaluation reasons about *why* iterative scheduling
//! converges — budget spent per candidate II, operations displaced, slot
//! searches performed — but the [`Counters`](crate::Counters) totals only
//! say how much work was done overall, not when. [`SchedObserver`] exposes
//! the scheduler's individual decisions as they happen: the scheduling
//! entry points are generic over an observer, so a real observer (the
//! JSON-lines `TraceWriter` and histogram-building `MetricsObserver` in
//! `ims-trace`) sees every event, while the default [`NullObserver`]
//! monomorphizes every hook into an empty inline body — the untraced
//! scheduler compiles to exactly the code it had before this trait
//! existed, and its output (schedules, counters, corpus stdout) is
//! bit-identical.
//!
//! Hooks fire in scheduling order. For one operation-scheduling step at
//! candidate initiation interval II the sequence is:
//!
//! 1. [`slot_search`](SchedObserver::slot_search) — `FindTimeSlot`
//!    examined `iters` slots starting at `estart` (real operations only);
//! 2. zero or more [`op_evicted`](SchedObserver::op_evicted) — operations
//!    displaced by a forced placement's resource conflicts;
//! 3. [`op_scheduled`](SchedObserver::op_scheduled) — the operation is
//!    placed (with `forced = true` when no conflict-free slot existed);
//! 4. zero or more further [`op_evicted`](SchedObserver::op_evicted) —
//!    scheduled successors whose dependence constraints the new placement
//!    violates.
//!
//! Around the steps, [`attempt_start`](SchedObserver::attempt_start) /
//! [`attempt_done`](SchedObserver::attempt_done) bracket each candidate
//! II, and [`budget_exhausted`](SchedObserver::budget_exhausted) fires
//! when an attempt runs out of its `BudgetRatio · N` step budget.
//!
//! Two hooks are *consulted* rather than merely notified:
//! [`placement_vetoed`](SchedObserver::placement_vetoed) lets an observer
//! reject a resource-free slot inside `FindTimeSlot` (the slot is then
//! treated exactly like a resource conflict; the forced-slot rule still
//! bypasses the veto so forward progress is preserved), and
//! [`attempt_accept`](SchedObserver::attempt_accept) lets an observer
//! reject a completed schedule at a candidate II, forcing the II to be
//! bumped. Both default to "no objection", so every existing observer is
//! unaffected; `ims-press` implements them to enforce a register-pressure
//! limit.
//!
//! Replaying events 2–4 (set the node's time on `op_scheduled`, clear it
//! on `op_evicted`) reconstructs the final schedule exactly; the
//! workspace's property tests rely on this.

use ims_graph::NodeId;

use crate::backend::BackendKind;
use crate::sched::Schedule;

/// Receiver for scheduler events; all hooks default to no-ops, so an
/// observer only implements the events it cares about.
///
/// The scheduling entry points ([`Scheduler`](crate::Scheduler), and the
/// `*_observed` functions behind it) are generic over `SchedObserver` and
/// monomorphized per observer type: observing costs exactly what the
/// observer's hook bodies cost, and [`NullObserver`] costs nothing.
pub trait SchedObserver {
    /// A backend run is starting; fired once per run, before any
    /// `attempt_start`, so observers can stamp subsequent events with
    /// the backend that produced them.
    fn backend(&mut self, kind: BackendKind) {
        let _ = kind;
    }

    /// An attempt at candidate initiation interval `ii` begins, with
    /// `budget` operation-scheduling steps available.
    fn attempt_start(&mut self, ii: i64, budget: i64) {
        let _ = (ii, budget);
    }

    /// `node` was placed at `time` using alternative `alt`. `forced` is
    /// true when no conflict-free slot existed and the placement displaced
    /// conflicting operations (§3.4). Fires for the START/STOP
    /// pseudo-operations too (always `alt = 0`, `forced = false`).
    fn op_scheduled(&mut self, node: NodeId, time: i64, alt: usize, forced: bool) {
        let _ = (node, time, alt, forced);
    }

    /// `node` was unscheduled because placing `evictor` displaced it —
    /// either a resource conflict with a forced placement or a violated
    /// dependence constraint.
    fn op_evicted(&mut self, node: NodeId, evictor: NodeId) {
        let _ = (node, evictor);
    }

    /// `FindTimeSlot` examined `iters` candidate slots for `node`,
    /// starting at `estart` (Figure 4; real operations only).
    fn slot_search(&mut self, node: NodeId, estart: i64, iters: u32) {
        let _ = (node, estart, iters);
    }

    /// The scheduler computed Estart for `node` by examining `preds`
    /// immediate predecessors (§3.2; fires once per scheduling step,
    /// including the START/STOP pseudo-operations, just before the
    /// corresponding `slot_search`). The per-step distribution of `preds`
    /// is what the profiler's `sched.estart.preds_per_op` histogram
    /// collects.
    fn estart_computed(&mut self, node: NodeId, preds: u32) {
        let _ = (node, preds);
    }

    /// The attempt at `ii` ran out of budget after `spent`
    /// operation-scheduling steps.
    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        let _ = (ii, spent);
    }

    /// The attempt at `ii` finished; `ok` is whether every operation was
    /// scheduled within budget.
    fn attempt_done(&mut self, ii: i64, ok: bool) {
        let _ = (ii, ok);
    }

    /// `FindTimeSlot` found a resource-free slot for `node` at `time`;
    /// return `true` to veto it, in which case the scheduler treats the
    /// slot as a resource conflict and keeps searching. The forced-slot
    /// rule (§3.4) deliberately bypasses this hook so a veto can never
    /// stall the schedule; attempt-level acceptance arbitrates instead.
    /// Defaults to `false` (never veto), which folds away entirely.
    fn placement_vetoed(&mut self, node: NodeId, time: i64) -> bool {
        let _ = (node, time);
        false
    }

    /// The attempt at `ii` scheduled every operation; return `false` to
    /// reject the completed `schedule`, recording the attempt as failed
    /// and bumping the candidate II. Defaults to `true` (accept), which
    /// folds away entirely.
    fn attempt_accept(&mut self, ii: i64, schedule: &Schedule) -> bool {
        let _ = (ii, schedule);
        true
    }
}

/// The default do-nothing observer: every hook is an empty inline body,
/// so the monomorphized scheduler is identical to an unobserved one.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullObserver;

impl SchedObserver for NullObserver {}

/// Forwarding impl so a borrowed observer can be handed to the builder
/// (`Scheduler::new(&p).observer(&mut tracer)`) while the caller keeps
/// ownership for inspection afterwards. Every hook must forward
/// explicitly — the trait's default bodies are no-ops.
impl<O: SchedObserver + ?Sized> SchedObserver for &mut O {
    fn backend(&mut self, kind: BackendKind) {
        (**self).backend(kind);
    }
    fn attempt_start(&mut self, ii: i64, budget: i64) {
        (**self).attempt_start(ii, budget);
    }
    fn op_scheduled(&mut self, node: NodeId, time: i64, alt: usize, forced: bool) {
        (**self).op_scheduled(node, time, alt, forced);
    }
    fn op_evicted(&mut self, node: NodeId, evictor: NodeId) {
        (**self).op_evicted(node, evictor);
    }
    fn slot_search(&mut self, node: NodeId, estart: i64, iters: u32) {
        (**self).slot_search(node, estart, iters);
    }
    fn estart_computed(&mut self, node: NodeId, preds: u32) {
        (**self).estart_computed(node, preds);
    }
    fn budget_exhausted(&mut self, ii: i64, spent: u64) {
        (**self).budget_exhausted(ii, spent);
    }
    fn attempt_done(&mut self, ii: i64, ok: bool) {
        (**self).attempt_done(ii, ok);
    }
    fn placement_vetoed(&mut self, node: NodeId, time: i64) -> bool {
        (**self).placement_vetoed(node, time)
    }
    fn attempt_accept(&mut self, ii: i64, schedule: &Schedule) -> bool {
        (**self).attempt_accept(ii, schedule)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Default)]
    struct CountingObserver {
        events: usize,
    }

    impl SchedObserver for CountingObserver {
        fn attempt_start(&mut self, _: i64, _: i64) {
            self.events += 1;
        }
        fn op_scheduled(&mut self, _: NodeId, _: i64, _: usize, _: bool) {
            self.events += 1;
        }
        fn placement_vetoed(&mut self, _: NodeId, _: i64) -> bool {
            self.events += 1;
            true
        }
        fn attempt_accept(&mut self, _: i64, _: &Schedule) -> bool {
            self.events += 1;
            false
        }
    }

    fn dummy_schedule() -> Schedule {
        Schedule {
            ii: 2,
            time: vec![0, 0, 2],
            alternative: vec![0, 0, 0],
            length: 2,
        }
    }

    fn fire_all<O: SchedObserver>(obs: &mut O) -> (bool, bool) {
        obs.backend(BackendKind::Ims);
        obs.attempt_start(2, 10);
        obs.op_scheduled(NodeId(1), 0, 0, false);
        obs.op_evicted(NodeId(1), NodeId(2));
        obs.slot_search(NodeId(1), 0, 2);
        obs.estart_computed(NodeId(1), 3);
        obs.budget_exhausted(2, 10);
        obs.attempt_done(2, false);
        let vetoed = obs.placement_vetoed(NodeId(1), 0);
        let accepted = obs.attempt_accept(2, &dummy_schedule());
        (vetoed, accepted)
    }

    #[test]
    fn null_observer_accepts_every_hook() {
        let (vetoed, accepted) = fire_all(&mut NullObserver);
        assert!(!vetoed, "default never vetoes a placement");
        assert!(accepted, "default always accepts an attempt");
    }

    #[test]
    fn mut_reference_forwards_every_overridden_hook() {
        let mut c = CountingObserver::default();
        let (vetoed, accepted) = fire_all(&mut &mut c);
        assert_eq!(c.events, 4, "the four overridden hooks forwarded");
        assert!(vetoed, "forwarding returns the inner veto verdict");
        assert!(!accepted, "forwarding returns the inner acceptance verdict");
    }
}
