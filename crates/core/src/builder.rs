//! The unified scheduling entry point.
//!
//! [`Scheduler`] is a builder over the three historical entry points
//! (`modulo_schedule`, `iterative_schedule`, `iterative_schedule_with`):
//! construct it from a [`Problem`], chain configuration and an optional
//! [`SchedObserver`], and call [`run`](Scheduler::run).
//!
//! ```
//! use ims_core::{ProblemBuilder, SchedConfig, Scheduler};
//! use ims_graph::DepKind;
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//!
//! let machine = minimal();
//! let mut pb = ProblemBuilder::new(&machine);
//! let a = pb.add_op(Opcode::Add, OpId(0));
//! let b = pb.add_op(Opcode::Mul, OpId(1));
//! pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
//! let problem = pb.finish();
//!
//! let out = Scheduler::new(&problem)
//!     .config(SchedConfig::new().budget_ratio(6.0))
//!     .run()?;
//! assert!(out.schedule.ii >= out.mii.mii);
//! # Ok::<(), ims_core::ScheduleError>(())
//! ```

use crate::backend::BackendOutcome;
use crate::observe::{NullObserver, SchedObserver};
use crate::problem::Problem;
use crate::registry::{BackendParams, BackendRegistry, BackendRunError};
use crate::sched::{modulo_schedule_observed, SchedConfig, SchedOutcome, ScheduleError};
use crate::spec::BackendSpec;

/// Builder for one modulo-scheduling run: problem + configuration +
/// observer.
///
/// The observer type is a generic parameter, so the scheduler is
/// monomorphized per observer: with the default [`NullObserver`] every
/// hook is an empty inline body and the run is bit-identical (schedules,
/// [`Counters`](crate::Counters), corpus output) to the historical
/// unobserved entry points.
#[derive(Debug)]
pub struct Scheduler<'p, 'm, O: SchedObserver = NullObserver> {
    problem: &'p Problem<'m>,
    config: SchedConfig,
    spec: BackendSpec,
    observer: O,
}

impl<'p, 'm> Scheduler<'p, 'm, NullObserver> {
    /// Starts a builder over `problem` with the default configuration and
    /// no observer.
    pub fn new(problem: &'p Problem<'m>) -> Self {
        Scheduler {
            problem,
            config: SchedConfig::default(),
            spec: BackendSpec::default(),
            observer: NullObserver,
        }
    }
}

impl<'p, 'm, O: SchedObserver> Scheduler<'p, 'm, O> {
    /// Replaces the whole configuration.
    pub fn config(mut self, config: SchedConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the `BudgetRatio` (see [`SchedConfig::budget_ratio`]).
    pub fn budget_ratio(mut self, budget_ratio: f64) -> Self {
        self.config = self.config.budget_ratio(budget_ratio);
        self
    }

    /// Caps the candidate-II search (see [`SchedConfig::max_ii`]).
    pub fn max_ii(mut self, max_ii: i64) -> Self {
        self.config = self.config.max_ii(max_ii);
        self
    }

    /// Attaches an observer — typically a `&mut` borrow, so the caller
    /// keeps the observer for inspection after [`run`](Scheduler::run):
    ///
    /// ```ignore
    /// let mut metrics = MetricsObserver::new();
    /// let out = Scheduler::new(&problem).observer(&mut metrics).run()?;
    /// ```
    pub fn observer<P: SchedObserver>(self, observer: P) -> Scheduler<'p, 'm, P> {
        Scheduler {
            problem: self.problem,
            config: self.config,
            spec: self.spec,
            observer,
        }
    }

    /// Selects the backend for [`run_backend`](Scheduler::run_backend):
    /// a [`BackendSpec`] such as `"exact".parse()?` or
    /// `"portfolio(ims,sat)".parse()?`. [`run`](Scheduler::run) ignores
    /// it (that path is always the in-crate iterative scheduler).
    pub fn backend(mut self, spec: BackendSpec) -> Self {
        self.spec = spec;
        self
    }

    /// Runs `ModuloSchedule` (Figure 2): MII computation, then iterative
    /// scheduling at successively larger candidate IIs.
    ///
    /// # Errors
    ///
    /// [`ScheduleError::IiCapExceeded`] when the configured `max_ii` is
    /// below the MII (no candidate II is admissible at all), and
    /// [`ScheduleError::BudgetExhausted`] when every candidate II up to
    /// the cap ran out of scheduling budget.
    pub fn run(mut self) -> Result<SchedOutcome, ScheduleError> {
        modulo_schedule_observed(self.problem, &self.config, &mut self.observer)
    }

    /// Resolves the selected backend spec (see
    /// [`backend`](Scheduler::backend)) against `registry` and runs it,
    /// forwarding this builder's `SchedConfig` and observer.
    ///
    /// ```
    /// use ims_core::{BackendRegistry, ProblemBuilder, Scheduler};
    /// use ims_ir::{OpId, Opcode};
    /// use ims_machine::minimal;
    ///
    /// let m = minimal();
    /// let mut pb = ProblemBuilder::new(&m);
    /// let _ = pb.add_op(Opcode::Add, OpId(0));
    /// let problem = pb.finish();
    ///
    /// let registry = BackendRegistry::new(); // `ims` only; backend
    ///                                        // crates register the rest
    /// let out = Scheduler::new(&problem)
    ///     .backend("portfolio(ims,ims)".parse()?)
    ///     .run_backend(&registry)?;
    /// assert!(out.schedule.ii >= out.mii.mii);
    /// # Ok::<(), Box<dyn std::error::Error>>(())
    /// ```
    ///
    /// # Errors
    ///
    /// [`BackendRunError::Resolve`] when the spec names a backend the
    /// registry has no factory for; [`BackendRunError::Schedule`] when
    /// the resolved backend fails.
    pub fn run_backend(mut self, registry: &BackendRegistry) -> Result<BackendOutcome, BackendRunError> {
        let params = BackendParams::new().sched(self.config.clone());
        let backend = registry.resolve(&self.spec, &params)?;
        Ok(backend.schedule_observed_dyn(self.problem, &mut self.observer)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::sched::modulo_schedule;
    use ims_graph::{DepKind, NodeId};
    use ims_ir::{OpId, Opcode};
    use ims_machine::{figure1_machine, minimal};

    fn recurrence<'m>(m: &'m ims_machine::MachineModel) -> Problem<'m> {
        let mut pb = ProblemBuilder::new(m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 4, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        pb.finish()
    }

    #[test]
    fn builder_matches_the_legacy_entry_point() {
        let m = minimal();
        let p = recurrence(&m);
        let via_builder = Scheduler::new(&p).run().unwrap();
        let legacy = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(via_builder.schedule, legacy.schedule);
        assert_eq!(via_builder.stats, legacy.stats);
    }

    #[test]
    fn chained_setters_reach_the_scheduler() {
        let m = minimal();
        let p = recurrence(&m);
        let err = Scheduler::new(&p).max_ii(2).budget_ratio(100.0).run();
        assert_eq!(
            err.unwrap_err(),
            ScheduleError::IiCapExceeded { mii: 5, max_ii: 2 }
        );
    }

    #[test]
    fn borrowed_observer_sees_the_run() {
        struct Tally {
            scheduled: u32,
            attempts: u32,
        }
        impl SchedObserver for Tally {
            fn op_scheduled(&mut self, _: NodeId, _: i64, _: usize, _: bool) {
                self.scheduled += 1;
            }
            fn attempt_start(&mut self, _: i64, _: i64) {
                self.attempts += 1;
            }
        }
        let m = figure1_machine();
        let mut pb = ProblemBuilder::new(&m);
        for i in 0..4 {
            let _ = pb.add_op(if i % 2 == 0 { Opcode::Add } else { Opcode::Mul }, OpId(i));
        }
        let p = pb.finish();
        let mut tally = Tally {
            scheduled: 0,
            attempts: 0,
        };
        let out = Scheduler::new(&p)
            .config(SchedConfig::new().budget_ratio(8.0))
            .observer(&mut tally)
            .run()
            .unwrap();
        assert_eq!(tally.attempts as usize, out.stats.attempts.len());
        // Every node (including START/STOP) is placed at least once.
        assert!(tally.scheduled as usize >= p.graph().num_nodes());
    }
}
