//! Independent validation of modulo schedules.
//!
//! The validator re-derives, from first principles, the two legality
//! conditions of a modulo schedule (§1): *"no intra- or inter-iteration
//! dependence is violated, and no resource usage conflict arises between
//! operations of either the same or distinct iterations"*. It shares no
//! code with the scheduler's bookkeeping (it rebuilds the modulo
//! reservation table from scratch), so a scheduler bug cannot hide from it.

use std::fmt;

use ims_graph::NodeId;

use crate::problem::Problem;
use crate::sched::Schedule;

/// A violation found by [`validate_schedule`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleViolation {
    /// The schedule's vectors do not match the problem's node count.
    ShapeMismatch,
    /// A node was scheduled before time zero.
    NegativeTime {
        /// The offending node.
        node: NodeId,
    },
    /// The START pseudo-operation is not at time 0.
    StartNotAtZero,
    /// `time(to) < time(from) + delay − II·distance` for some edge.
    DependenceViolated {
        /// Predecessor.
        from: NodeId,
        /// Successor.
        to: NodeId,
        /// The slack by which the constraint fails (positive).
        shortfall: i64,
    },
    /// Two operations reserve the same resource on the same cycle mod II.
    ResourceCollision {
        /// First reserver.
        a: NodeId,
        /// Second reserver.
        b: NodeId,
        /// The resource index.
        resource: usize,
        /// The cycle (mod II) of the collision.
        slot: i64,
    },
    /// A node's chosen alternative index is out of range.
    BadAlternative {
        /// The offending node.
        node: NodeId,
    },
}

impl fmt::Display for ScheduleViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScheduleViolation::ShapeMismatch => write!(f, "schedule shape mismatch"),
            ScheduleViolation::NegativeTime { node } => {
                write!(f, "{node} scheduled before time zero")
            }
            ScheduleViolation::StartNotAtZero => write!(f, "START not at time zero"),
            ScheduleViolation::DependenceViolated {
                from,
                to,
                shortfall,
            } => write!(
                f,
                "dependence {from} -> {to} violated by {shortfall} cycles"
            ),
            ScheduleViolation::ResourceCollision {
                a,
                b,
                resource,
                slot,
            } => write!(
                f,
                "{a} and {b} both reserve resource {resource} at slot {slot}"
            ),
            ScheduleViolation::BadAlternative { node } => {
                write!(f, "{node} selects an out-of-range alternative")
            }
        }
    }
}

impl std::error::Error for ScheduleViolation {}

/// Checks `schedule` against every dependence edge and rebuilds the modulo
/// reservation table to check every resource reservation.
///
/// # Errors
///
/// Returns the first [`ScheduleViolation`] found.
pub fn validate_schedule(
    problem: &Problem<'_>,
    schedule: &Schedule,
) -> Result<(), ScheduleViolation> {
    let graph = problem.graph();
    let n = graph.num_nodes();
    if schedule.time.len() != n || schedule.alternative.len() != n {
        return Err(ScheduleViolation::ShapeMismatch);
    }
    if schedule.time[problem.start().index()] != 0 {
        return Err(ScheduleViolation::StartNotAtZero);
    }
    for v in graph.nodes() {
        if schedule.time[v.index()] < 0 {
            return Err(ScheduleViolation::NegativeTime { node: v });
        }
    }

    // Dependences: time(to) ≥ time(from) + delay − II·distance.
    let ii = schedule.ii;
    for e in graph.edges() {
        let lhs = schedule.time[e.to.index()];
        let rhs = schedule.time[e.from.index()] + e.delay - ii * e.distance as i64;
        if lhs < rhs {
            return Err(ScheduleViolation::DependenceViolated {
                from: e.from,
                to: e.to,
                shortfall: rhs - lhs,
            });
        }
    }

    // Resources: rebuild the MRT slot map from scratch.
    let nres = problem.machine().num_resources();
    let mut slots: Vec<Option<NodeId>> = vec![None; ii as usize * nres];
    for v in problem.op_nodes() {
        let info = problem.info(v).expect("op_nodes yields real operations");
        let ai = schedule.alternative[v.index()];
        let Some(alt) = info.alternatives.get(ai) else {
            return Err(ScheduleViolation::BadAlternative { node: v });
        };
        let t = schedule.time[v.index()];
        for &(r, off) in alt.table.uses() {
            let slot = (t + off as i64).rem_euclid(ii);
            let cell = &mut slots[slot as usize * nres + r.index()];
            if let Some(prev) = *cell {
                return Err(ScheduleViolation::ResourceCollision {
                    a: prev,
                    b: v,
                    resource: r.index(),
                    slot,
                });
            }
            *cell = Some(v);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;

    fn two_op_problem(m: &ims_machine::MachineModel) -> (Problem<'_>, NodeId, NodeId) {
        let mut pb = ProblemBuilder::new(m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        (pb.finish(), a, b)
    }

    fn hand_schedule(ii: i64, times: Vec<i64>) -> Schedule {
        let n = times.len();
        Schedule {
            ii,
            length: *times.last().unwrap(),
            time: times,
            alternative: vec![0; n],
        }
    }

    #[test]
    fn valid_hand_schedule_passes() {
        let m = minimal();
        let (p, _, _) = two_op_problem(&m);
        // START=0, a=0, b=1, STOP=2. II=2: slots 0 and 1 distinct.
        let s = hand_schedule(2, vec![0, 0, 1, 2]);
        assert_eq!(validate_schedule(&p, &s), Ok(()));
    }

    #[test]
    fn dependence_violation_detected() {
        let m = minimal();
        let (p, a, b) = two_op_problem(&m);
        // b at the same time as a violates the delay-1 edge.
        let s = hand_schedule(2, vec![0, 0, 0, 2]);
        match validate_schedule(&p, &s) {
            Err(ScheduleViolation::DependenceViolated { from, to, shortfall }) => {
                assert_eq!((from, to, shortfall), (a, b, 1));
            }
            other => panic!("expected dependence violation, got {other:?}"),
        }
    }

    #[test]
    fn modulo_resource_collision_detected() {
        let m = minimal();
        let (p, a, b) = two_op_problem(&m);
        // a at 0 and b at 2 collide at II=2 on the single unit.
        let s = hand_schedule(2, vec![0, 0, 2, 3]);
        match validate_schedule(&p, &s) {
            Err(ScheduleViolation::ResourceCollision { a: x, b: y, .. }) => {
                assert_eq!((x, y), (a, b));
            }
            other => panic!("expected resource collision, got {other:?}"),
        }
    }

    #[test]
    fn inter_iteration_dependences_checked() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 3, 1, DepKind::Flow, false);
        let p = pb.finish();
        // II=2 < required 3: the self-edge is violated by 1.
        let s = hand_schedule(2, vec![0, 0, 1]);
        assert!(matches!(
            validate_schedule(&p, &s),
            Err(ScheduleViolation::DependenceViolated { shortfall: 1, .. })
        ));
        let ok = hand_schedule(3, vec![0, 0, 1]);
        assert_eq!(validate_schedule(&p, &ok), Ok(()));
    }

    #[test]
    fn shape_and_start_checks() {
        let m = minimal();
        let (p, _, _) = two_op_problem(&m);
        let s = hand_schedule(2, vec![0, 0]);
        assert_eq!(validate_schedule(&p, &s), Err(ScheduleViolation::ShapeMismatch));
        let s = hand_schedule(2, vec![1, 1, 2, 3]);
        assert_eq!(validate_schedule(&p, &s), Err(ScheduleViolation::StartNotAtZero));
        let mut s = hand_schedule(2, vec![0, 0, 1, 2]);
        s.time[1] = -1;
        assert!(matches!(
            validate_schedule(&p, &s),
            Err(ScheduleViolation::NegativeTime { .. })
        ));
    }

    #[test]
    fn bad_alternative_detected() {
        let m = minimal();
        let (p, _, _) = two_op_problem(&m);
        let mut s = hand_schedule(2, vec![0, 0, 1, 2]);
        s.alternative[1] = 9;
        assert!(matches!(
            validate_schedule(&p, &s),
            Err(ScheduleViolation::BadAlternative { .. })
        ));
    }

    #[test]
    fn violations_display() {
        let v = ScheduleViolation::StartNotAtZero;
        assert!(!v.to_string().is_empty());
    }
}
