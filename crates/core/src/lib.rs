#![deny(missing_docs)]

//! Iterative modulo scheduling — the core algorithm of the paper.
//!
//! This crate implements everything in §2 and §3 of Rau's *"Iterative Modulo
//! Scheduling"* (MICRO-27, 1994):
//!
//! * the **minimum initiation interval** bounds of §2 — the
//!   resource-constrained [`res_mii`] (bin-packing approximation over
//!   reservation tables with multiple alternatives) and the
//!   recurrence-constrained [`rec_mii`] (per-SCC MinDist feasibility with a
//!   geometric probe followed by binary search), combined by [`compute_mii`];
//! * the **HeightR priority function** of §3.2 ([`height_r`]), the direct
//!   extension of height-based list-scheduling priority to cyclic graphs;
//! * the **modulo reservation table** of §3.1 ([`Mrt`]);
//! * the **iterative scheduler** itself (§3.1–§3.4): the [`Scheduler`]
//!   builder (and the [`modulo_schedule`] wrapper it subsumes) drives
//!   [`iterative_schedule`] at successively larger II, with
//!   `FindTimeSlot`'s forward-progress rule and the displacement policy of
//!   §3.4, under the `BudgetRatio` operation-scheduling budget;
//! * an **event-level observer layer** ([`SchedObserver`]): every
//!   scheduling decision (placements, evictions, slot searches, budget
//!   exhaustion) is reported to a monomorphized observer, at zero cost
//!   for the default [`NullObserver`] — the `ims-trace` crate builds
//!   JSON-lines tracing and metrics aggregation on top;
//! * a **pluggable backend seam** ([`SchedulerBackend`]): the iterative
//!   scheduler ([`IterativeBackend`]), the exact branch-and-bound
//!   scheduler in `ims-exact`, and the CDCL SAT scheduler in `ims-sat`
//!   sit behind one object-safe trait, all returning the same
//!   [`Schedule`] plus [`IiBounds`] on the true minimum II, so the
//!   harness can measure the heuristic's optimality gap. Backends are
//!   string-addressable: a [`BackendSpec`] (`ims`, `exact`, `sat`,
//!   `portfolio(a,b,...)`) resolves through an open [`BackendRegistry`]
//!   to a boxed backend — the portfolio form races members with a
//!   deterministic winner rule ([`PortfolioBackend`]);
//! * the **acyclic list scheduler** ([`list_schedule`]) the paper uses both
//!   as the schedule-length lower bound and as the cost yardstick;
//! * an independent **schedule validator** ([`validate_schedule`]) that
//!   re-checks every dependence and modulo resource constraint of a
//!   schedule, and the per-loop **instrumentation counters** ([`Counters`])
//!   behind the paper's Table 4.
//!
//! # Examples
//!
//! Schedule a two-operation recurrence on a single-issue machine:
//!
//! ```
//! use ims_core::{modulo_schedule, ProblemBuilder, SchedConfig};
//! use ims_graph::DepKind;
//! use ims_ir::{OpId, Opcode};
//! use ims_machine::minimal;
//!
//! let m = minimal();
//! let mut pb = ProblemBuilder::new(&m);
//! let a = pb.add_op(Opcode::Add, OpId(0));
//! let b = pb.add_op(Opcode::Mul, OpId(1));
//! pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
//! pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // loop-carried
//! let problem = pb.finish();
//!
//! let outcome = modulo_schedule(&problem, &SchedConfig::default())?;
//! assert_eq!(outcome.mii.rec_mii, 2); // delay 2 around the circuit, distance 1
//! assert_eq!(outcome.schedule.ii, 2);
//! # Ok::<(), ims_core::SchedError>(())
//! ```

mod backend;
mod builder;
mod counters;
pub mod display;
mod list_sched;
mod mii;
mod mrt;
mod observe;
mod priority;
mod problem;
mod registry;
mod sched;
mod spec;
mod validate;

pub use backend::{BackendKind, BackendOutcome, IiBounds, IterativeBackend, SchedulerBackend};
pub use builder::Scheduler;
pub use registry::{
    BackendParams, BackendRegistry, BackendRunError, BoxedBackend, PortfolioBackend,
    PortfolioReport, ResolveError,
};
pub use spec::{BackendSpec, ParseBackendError};
pub use counters::Counters;
pub use list_sched::{list_schedule, ListSchedule};
pub use mii::{compute_mii, rec_mii, rec_mii_by_circuits, res_mii, res_mii_with_usage, MiiInfo};
pub use mrt::Mrt;
pub use observe::{NullObserver, SchedObserver};
pub use priority::{height_r, priorities, PriorityKind};
pub use problem::{NodeKind, Problem, ProblemBuilder};
pub use sched::{
    iterative_schedule, iterative_schedule_observed, iterative_schedule_with, modulo_schedule,
    modulo_schedule_observed, IiAttempt, SchedConfig, SchedError, SchedOutcome, SchedStats,
    Schedule, ScheduleError,
};
pub use validate::{validate_schedule, ScheduleViolation};
