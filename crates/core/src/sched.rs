//! The iterative modulo scheduling algorithm (§3).
//!
//! [`modulo_schedule`] is the paper's `ModuloSchedule` procedure (Figure 2):
//! it computes the MII and calls [`iterative_schedule`] (Figure 3) with
//! successively larger candidate IIs until a schedule is found, giving each
//! attempt a budget of `BudgetRatio · N` operation-scheduling steps.
//!
//! [`iterative_schedule`] differs from acyclic list scheduling exactly as
//! §3.1 enumerates: operations can be unscheduled and rescheduled; the
//! highest-priority unscheduled operation is picked regardless of whether
//! its predecessors are scheduled; `Estart` considers only currently
//! scheduled predecessors; the modulo reservation table enforces the modulo
//! constraint; only `II` contiguous time slots are examined; and
//! `FindTimeSlot` (Figure 4) falls back to a forced slot with the
//! forward-progress rule of §3.4.

use std::collections::BinaryHeap;

use ims_graph::NodeId;

use crate::counters::Counters;
use crate::list_sched::list_schedule;
use crate::mii::{compute_mii, MiiInfo};
use crate::mrt::Mrt;
use crate::observe::{NullObserver, SchedObserver};
use crate::priority::{priorities, PriorityKind};
use crate::problem::Problem;

/// Tuning knobs for the scheduler (see [`Scheduler`](crate::Scheduler)).
///
/// Construct with [`SchedConfig::new`] (or `default()`) and chain the
/// setters; the struct is `#[non_exhaustive]` so new knobs can be added
/// without breaking downstream builds:
///
/// ```
/// use ims_core::{PriorityKind, SchedConfig};
///
/// let cfg = SchedConfig::new()
///     .budget_ratio(6.0)
///     .max_ii(64)
///     .priority(PriorityKind::HeightR);
/// assert_eq!(cfg.budget_ratio, 6.0);
/// assert_eq!(cfg.max_ii, Some(64));
/// ```
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub struct SchedConfig {
    /// *"BudgetRatio is the ratio of the maximum number of operation
    /// scheduling steps attempted (before giving up and trying a larger
    /// initiation interval) to the number of operations in the loop."*
    /// The paper finds 2 near-optimal for both schedule quality and
    /// compile time (§4.3), which is the default; the quality experiments
    /// in §4 use 6.
    pub budget_ratio: f64,
    /// Upper bound on candidate IIs. `None` derives a guaranteed-feasible
    /// cap from the acyclic list schedule (see [`modulo_schedule`]).
    pub max_ii: Option<i64>,
    /// The scheduling priority function (§3.2); HeightR by default.
    pub priority: PriorityKind,
    /// Register-pressure limit (rotating-register-file capacity). The
    /// scheduler itself never inspects the value beyond error reporting:
    /// enforcement lives in the [`SchedObserver`] hooks
    /// [`placement_vetoed`](SchedObserver::placement_vetoed) and
    /// [`attempt_accept`](SchedObserver::attempt_accept) (implemented by
    /// `ims-press`). Setting the limit here (a) documents the run as
    /// pressure-constrained and (b) turns cap exhaustion into the
    /// structured [`ScheduleError::PressureInfeasible`]. `None` (the
    /// default) is the pressure-blind scheduler, bit-identical to all
    /// prior releases.
    pub pressure_limit: Option<u32>,
}

impl Default for SchedConfig {
    fn default() -> Self {
        SchedConfig {
            budget_ratio: 2.0,
            max_ii: None,
            priority: PriorityKind::default(),
            pressure_limit: None,
        }
    }
}

impl SchedConfig {
    /// The default configuration (BudgetRatio 2, automatic II cap,
    /// HeightR priority).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the `BudgetRatio` (operation-scheduling steps per real
    /// operation, per candidate II).
    pub fn budget_ratio(mut self, budget_ratio: f64) -> Self {
        self.budget_ratio = budget_ratio;
        self
    }

    /// Caps the candidate-II search at `max_ii` (inclusive). Without a
    /// cap, a guaranteed-feasible one is derived from the acyclic list
    /// schedule.
    pub fn max_ii(mut self, max_ii: i64) -> Self {
        self.max_ii = Some(max_ii);
        self
    }

    /// Selects the scheduling priority function (§3.2).
    pub fn priority(mut self, priority: PriorityKind) -> Self {
        self.priority = priority;
        self
    }

    /// Declares the run pressure-constrained to `limit` registers (see
    /// [`SchedConfig::pressure_limit`]). Pair with a pressure-enforcing
    /// observer such as `ims_press::PressureObserver`.
    pub fn pressure_limit(mut self, limit: u32) -> Self {
        self.pressure_limit = Some(limit);
        self
    }

    /// A config with the given budget ratio and automatic II cap.
    pub fn with_budget_ratio(budget_ratio: f64) -> Self {
        Self::new().budget_ratio(budget_ratio)
    }
}

/// A legal modulo schedule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schedule {
    /// The initiation interval achieved.
    pub ii: i64,
    /// Issue time of every node (indexed by `NodeId::index`; START is 0).
    pub time: Vec<i64>,
    /// Chosen alternative index per node (0 for pseudo-operations).
    pub alternative: Vec<usize>,
    /// Schedule length for one iteration: the STOP pseudo-operation's time.
    pub length: i64,
}

impl Schedule {
    /// Issue time of `node`.
    ///
    /// # Panics
    ///
    /// Panics if `node` is out of range.
    pub fn time_of(&self, node: NodeId) -> i64 {
        self.time[node.index()]
    }

    /// Number of kernel stages: `⌈length / II⌉`, at least 1. Iteration
    /// `i`'s operations span stages, and `stage_count − 1` iterations are
    /// in flight alongside a given one in the steady state.
    pub fn stage_count(&self) -> u32 {
        let sc = (self.length + self.ii - 1) / self.ii;
        sc.max(1) as u32
    }
}

/// One candidate-II attempt, for cost accounting (§4.3's scheduling
/// inefficiency counts *"the total number of operation scheduling steps
/// performed in IterativeSchedule"*, including failed attempts).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IiAttempt {
    /// The candidate II attempted.
    pub ii: i64,
    /// Operation-scheduling steps spent on real operations.
    pub steps: u64,
    /// Whether every operation was scheduled within budget.
    pub succeeded: bool,
}

/// Cost statistics for a [`modulo_schedule`] run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SchedStats {
    /// Every candidate II attempted, in order; the last one succeeded.
    pub attempts: Vec<IiAttempt>,
    /// Work counters for the Table 4 complexity fits.
    pub counters: Counters,
}

impl SchedStats {
    /// Real-operation scheduling steps in the successful attempt — the
    /// numerator of Table 3's *"Number of nodes scheduled (ratio)"*.
    pub fn final_steps(&self) -> u64 {
        self.attempts
            .iter()
            .rev()
            .find(|a| a.succeeded)
            .map_or(0, |a| a.steps)
    }

    /// Real-operation scheduling steps across all attempts — the numerator
    /// of Figure 6's aggregate scheduling inefficiency.
    pub fn total_steps(&self) -> u64 {
        self.attempts.iter().map(|a| a.steps).sum()
    }
}

/// The result of [`modulo_schedule`].
#[derive(Debug, Clone, PartialEq)]
pub struct SchedOutcome {
    /// The legal schedule found.
    pub schedule: Schedule,
    /// The MII bounds computed before scheduling.
    pub mii: MiiInfo,
    /// Cost statistics.
    pub stats: SchedStats,
}

impl SchedOutcome {
    /// `DeltaII = II − MII`, the primary quality metric of §4.3.
    pub fn delta_ii(&self) -> i64 {
        self.schedule.ii - self.mii.mii
    }
}

/// Failure of a scheduling run, surfaced uniformly from
/// [`Scheduler::run`](crate::Scheduler::run) and the legacy
/// [`modulo_schedule`] wrapper. Match on the variants, not on the
/// [`Display`](std::fmt::Display) text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScheduleError {
    /// The configured II cap is below the MII, so no candidate II was
    /// admissible and no attempt was made.
    IiCapExceeded {
        /// The MII the search would have started from.
        mii: i64,
        /// The configured cap that excluded it.
        max_ii: i64,
    },
    /// Every candidate II from the MII up to the cap ran out of its
    /// `BudgetRatio · N` operation-scheduling budget. With the automatic
    /// cap this indicates an inconsistent dependence graph (e.g. a
    /// positive-delay zero-distance cycle).
    BudgetExhausted {
        /// The last (largest) candidate II attempted.
        last_ii: i64,
        /// Operation-scheduling steps spent across all failed attempts.
        spent: u64,
    },
    /// A pressure-constrained run (`SchedConfig::pressure_limit` set)
    /// exhausted every candidate II up to the cap: the observer rejected
    /// each completed schedule, or its placement vetoes made the attempts
    /// burn their budgets before completing. Either way the loop's values
    /// do not fit the declared register file up to the cap. Replaces
    /// [`BudgetExhausted`](ScheduleError::BudgetExhausted) whenever the
    /// limit is set.
    PressureInfeasible {
        /// The configured register-pressure limit.
        limit: u32,
        /// The last (largest) candidate II attempted.
        last_ii: i64,
    },
}

/// Legacy name for [`ScheduleError`], kept so pre-builder callers
/// compile. Prefer `ScheduleError` in new code.
pub type SchedError = ScheduleError;

impl std::fmt::Display for ScheduleError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScheduleError::IiCapExceeded { mii, max_ii } => {
                write!(
                    f,
                    "II cap {max_ii} is below the MII {mii}: no candidate II admissible"
                )
            }
            ScheduleError::BudgetExhausted { last_ii, spent } => {
                write!(
                    f,
                    "no modulo schedule found up to II {last_ii} \
                     ({spent} scheduling steps spent)"
                )
            }
            ScheduleError::PressureInfeasible { limit, last_ii } => {
                write!(
                    f,
                    "no schedule fits the register-pressure limit {limit} \
                     up to II {last_ii}"
                )
            }
        }
    }
}

impl std::error::Error for ScheduleError {}

/// Figure 2: compute the MII, then try `IterativeSchedule` at II = MII,
/// MII+1, … until a schedule is found.
///
/// # Example
///
/// ```
/// use ims_core::{modulo_schedule, validate_schedule, ProblemBuilder, SchedConfig};
/// use ims_graph::DepKind;
/// use ims_ir::{OpId, Opcode};
/// use ims_machine::minimal;
///
/// let machine = minimal();
/// let mut pb = ProblemBuilder::new(&machine);
/// let a = pb.add_op(Opcode::Add, OpId(0));
/// let b = pb.add_op(Opcode::Mul, OpId(1));
/// pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
/// let problem = pb.finish();
///
/// let out = modulo_schedule(&problem, &SchedConfig::default()).unwrap();
/// assert!(out.schedule.ii >= out.mii.mii);
/// assert!(validate_schedule(&problem, &out.schedule).is_ok());
/// ```
///
/// # Errors
///
/// Returns [`ScheduleError::IiCapExceeded`] when an explicit `max_ii` is
/// below the MII, and [`ScheduleError::BudgetExhausted`] if no schedule
/// is found up to the configured (or automatically derived) II cap; with
/// a well-formed dependence graph and the automatic cap the latter cannot
/// happen, because a large enough II always admits the acyclic list
/// schedule.
///
/// This is the original entry point, kept as a thin wrapper; prefer the
/// [`Scheduler`](crate::Scheduler) builder, which also accepts an
/// observer.
pub fn modulo_schedule(
    problem: &Problem<'_>,
    config: &SchedConfig,
) -> Result<SchedOutcome, ScheduleError> {
    modulo_schedule_observed(problem, config, &mut NullObserver)
}

/// [`modulo_schedule`] with scheduler events reported to `observer` —
/// the workhorse behind [`Scheduler::run`](crate::Scheduler::run).
///
/// Monomorphized per observer type: with [`NullObserver`] this compiles
/// to exactly the unobserved scheduler.
///
/// # Errors
///
/// As [`modulo_schedule`].
pub fn modulo_schedule_observed<O: SchedObserver>(
    problem: &Problem<'_>,
    config: &SchedConfig,
    observer: &mut O,
) -> Result<SchedOutcome, ScheduleError> {
    observer.backend(crate::backend::BackendKind::Ims);
    let mut counters = Counters::new();
    let mii = compute_mii(problem, &mut counters);

    // A guaranteed-feasible fallback II: at II ≥ list-schedule length plus
    // the largest delay/table span, consecutive iterations cannot interact,
    // so the acyclic schedule itself is a legal modulo schedule.
    let cap = config.max_ii.unwrap_or_else(|| {
        let ls = list_schedule(problem);
        let max_delay = problem
            .graph()
            .edges()
            .iter()
            .map(|e| e.delay)
            .max()
            .unwrap_or(0)
            .max(0);
        let max_span = problem
            .op_nodes()
            .filter_map(|n| problem.info(n))
            .flat_map(|i| i.alternatives.iter().map(|a| a.table.max_offset() as i64))
            .max()
            .unwrap_or(0);
        (ls.length + max_delay.max(max_span) + 1).max(mii.mii)
    });

    // The paper defines BudgetRatio relative to "the number of operations
    // in the loop": real operations only, not the START/STOP
    // pseudo-operations (whose placement is also not charged against the
    // budget — see `iterative_schedule_with`). At least 1 so empty loops
    // and tiny ratios still enter the scheduling loop.
    let n_real = problem.num_ops() as f64;
    let budget = ((config.budget_ratio * n_real).ceil() as i64).max(1);
    let mut stats = SchedStats::default();

    // The cap bounds every attempt, including the first: an explicit
    // `max_ii` below the MII means no candidate II is admissible at all.
    if cap < mii.mii {
        return Err(ScheduleError::IiCapExceeded {
            mii: mii.mii,
            max_ii: cap,
        });
    }
    let mut ii = mii.mii;
    while ii <= cap {
        observer.attempt_start(ii, budget);
        let (result, steps) = iterative_schedule_observed(
            problem,
            ii,
            budget,
            config.priority,
            &mut counters,
            observer,
        );
        // A complete schedule must still pass the observer's acceptance
        // check (register pressure, in the ims-press observer); a rejected
        // attempt is recorded as failed and the II is bumped, exactly like
        // a budget exhaustion at this II.
        let succeeded = match result {
            Some(ref schedule) => observer.attempt_accept(ii, schedule),
            None => false,
        };
        observer.attempt_done(ii, succeeded);
        stats.attempts.push(IiAttempt {
            ii,
            steps,
            succeeded,
        });
        if succeeded {
            stats.counters = counters;
            return Ok(SchedOutcome {
                schedule: result.expect("accepted attempt has a schedule"),
                mii,
                stats,
            });
        }
        ii += 1;
    }
    stats.counters = counters;
    // Under a pressure limit, cap exhaustion is a register-file verdict
    // either way: the observer rejected completed schedules outright, or
    // its placement vetoes made every attempt burn its budget before
    // completing. Both mean "this loop does not fit the declared file up
    // to the cap".
    if let Some(limit) = config.pressure_limit {
        return Err(ScheduleError::PressureInfeasible { limit, last_ii: cap });
    }
    Err(ScheduleError::BudgetExhausted {
        last_ii: cap,
        spent: stats.total_steps(),
    })
}

/// Figure 3: one attempt at the given candidate II under the given budget.
///
/// The budget is a limit on *real*-operation scheduling steps, matching
/// the paper's definition of BudgetRatio over "the number of operations in
/// the loop"; placing the START/STOP pseudo-operations is free. Returns
/// the schedule (if every operation was placed before the budget ran out)
/// and the number of operation-scheduling steps spent on real operations.
pub fn iterative_schedule(
    problem: &Problem<'_>,
    ii: i64,
    budget: i64,
    counters: &mut Counters,
) -> (Option<Schedule>, u64) {
    iterative_schedule_with(problem, ii, budget, PriorityKind::HeightR, counters)
}

/// A worklist entry: max-heap by priority, ties to the smaller node id —
/// the same total order the paper's `HighestPriorityOperation` induces.
/// Keys are unique per node (ids are distinct), so heap pops are
/// deterministic regardless of internal heap layout.
#[derive(PartialEq, Eq)]
struct Cand {
    height: i64,
    node: NodeId,
}

impl Ord for Cand {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.height
            .cmp(&other.height)
            .then_with(|| other.node.0.cmp(&self.node.0))
    }
}

impl PartialOrd for Cand {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// [`iterative_schedule`] with an explicit priority function (§3.2's
/// alternatives; used by the priority ablation). Kept as a thin wrapper
/// over [`iterative_schedule_observed`]; prefer the
/// [`Scheduler`](crate::Scheduler) builder for whole runs.
pub fn iterative_schedule_with(
    problem: &Problem<'_>,
    ii: i64,
    budget: i64,
    priority: PriorityKind,
    counters: &mut Counters,
) -> (Option<Schedule>, u64) {
    iterative_schedule_observed(problem, ii, budget, priority, counters, &mut NullObserver)
}

/// One candidate-II attempt with scheduler events reported to `observer`
/// (see [`SchedObserver`] for the exact hook sequence).
pub fn iterative_schedule_observed<O: SchedObserver>(
    problem: &Problem<'_>,
    ii: i64,
    budget: i64,
    priority: PriorityKind,
    counters: &mut Counters,
    observer: &mut O,
) -> (Option<Schedule>, u64) {
    let graph = problem.graph();
    let n = graph.num_nodes();
    let start = problem.start();
    let stop = problem.stop();

    // Scheduling priorities for this II (§3.2).
    let heights = priorities(problem, ii, priority, counters);

    let mut time: Vec<Option<i64>> = vec![None; n];
    let mut prev_time = vec![0i64; n];
    let mut never_scheduled = vec![true; n];
    let mut alternative = vec![0usize; n];
    let mut mrt = Mrt::new(ii, problem.machine().num_resources());
    let mut budget = budget;
    let mut real_steps = 0u64;
    let mut unscheduled = n; // including START until it is placed

    // Schedule the START operation at time 0. Pseudo-operations are not
    // charged against the budget (the paper's BudgetRatio counts operation
    // scheduling steps over the loop's real operations).
    time[start.index()] = Some(0);
    never_scheduled[start.index()] = false;
    prev_time[start.index()] = 0;
    unscheduled -= 1;
    observer.op_scheduled(start, 0, 0, false);

    // HighestPriorityOperation as a priority-sorted worklist (§3.2): the
    // heap holds exactly the unscheduled operations, keyed by priority with
    // ties to the smaller id, replacing a per-step O(N) scan. Displaced
    // operations are reinserted by `unschedule`.
    let mut worklist: BinaryHeap<Cand> = (0..n as u32)
        .map(NodeId)
        .filter(|&v| v != start)
        .map(|v| Cand {
            height: heights[v.index()],
            node: v,
        })
        .collect();
    // Eviction scratch, reused across every forced placement.
    let mut victims: Vec<NodeId> = Vec::new();

    while unscheduled > 0 {
        let node = worklist
            .pop()
            .expect("unscheduled > 0 implies a candidate exists")
            .node;

        // Estart: only currently scheduled predecessors constrain the slot,
        // each term clamped at zero (Figure 5b).
        let mut estart = 0i64;
        let mut preds_examined = 0u32;
        for e in graph.preds(node) {
            counters.estart_preds += 1;
            preds_examined += 1;
            if e.from == node {
                continue;
            }
            if let Some(tq) = time[e.from.index()] {
                let term = tq + e.delay - ii * e.distance as i64;
                if term > estart {
                    estart = term;
                }
            }
        }
        observer.estart_computed(node, preds_examined);
        let min_time = estart;
        let max_time = min_time + ii - 1;

        // FindTimeSlot (Figure 4).
        let info = problem.info(node);
        if info.is_some() && budget <= 0 {
            // The budget covers real-operation scheduling steps only; it is
            // spent, so this candidate II has failed.
            observer.budget_exhausted(ii, real_steps);
            counters.mrt_probes += mrt.probes();
            return (None, real_steps);
        }
        let slot = match info {
            None => min_time, // Pseudo-operations use no resources.
            Some(info) => {
                let mut found = None;
                let mut cur = min_time;
                let mut search_iters = 0u32;
                while found.is_none() && cur <= max_time {
                    counters.findslot_iters += 1;
                    search_iters += 1;
                    let free = info
                        .alternatives
                        .iter()
                        .position(|a| !mrt.conflicts(a.mask(), cur));
                    // A resource-free slot can still be vetoed by the
                    // observer (register pressure, in ims-press); a veto is
                    // treated exactly like a resource conflict. If every
                    // slot in the window is vetoed, the forced-slot rule
                    // below places anyway — forward progress is preserved
                    // and the attempt-level acceptance check arbitrates.
                    if free.is_some() && !observer.placement_vetoed(node, cur) {
                        found = Some(cur);
                    } else {
                        cur += 1;
                    }
                }
                observer.slot_search(node, estart, search_iters);
                match found {
                    Some(t) => t,
                    None => {
                        // Forced slot with the forward-progress rule: never
                        // reschedule at the previous time.
                        if never_scheduled[node.index()] || min_time > prev_time[node.index()] {
                            min_time
                        } else {
                            prev_time[node.index()] + 1
                        }
                    }
                }
            }
        };

        // Schedule(node, slot): displace resource conflicts (only when the
        // slot was forced) and dependence-violating successors (§3.4).
        let mut forced = false;
        if let Some(info) = info {
            let free = info
                .alternatives
                .iter()
                .position(|a| !mrt.conflicts(a.mask(), slot));
            let chosen = match free {
                Some(ai) => ai,
                None => {
                    forced = true;
                    // "all operations are unscheduled which conflict with
                    // the use of any of the alternatives".
                    for a in &info.alternatives {
                        mrt.conflicting_nodes_into(a.mask(), slot, &mut victims);
                        for &victim in &victims {
                            unschedule(
                                problem,
                                victim,
                                node,
                                &mut time,
                                &mut mrt,
                                &alternative,
                                &mut unscheduled,
                                &mut worklist,
                                &heights,
                                counters,
                                observer,
                            );
                        }
                    }
                    0
                }
            };
            mrt.place(node, info.alternatives[chosen].mask(), slot);
            alternative[node.index()] = chosen;
            real_steps += 1;
            budget -= 1;
        }
        time[node.index()] = Some(slot);
        never_scheduled[node.index()] = false;
        prev_time[node.index()] = slot;
        unscheduled -= 1;
        observer.op_scheduled(node, slot, alternative[node.index()], forced);

        // Displace scheduled immediate successors whose dependence
        // constraint the new placement violates.
        for e in graph.succs(node) {
            if e.to == node {
                continue;
            }
            if let Some(tq) = time[e.to.index()] {
                if tq < slot + e.delay - ii * e.distance as i64 {
                    unschedule(
                        problem,
                        e.to,
                        node,
                        &mut time,
                        &mut mrt,
                        &alternative,
                        &mut unscheduled,
                        &mut worklist,
                        &heights,
                        counters,
                        observer,
                    );
                }
            }
        }
    }

    counters.mrt_probes += mrt.probes();
    let time: Vec<i64> = time.into_iter().map(|t| t.expect("all scheduled")).collect();
    let length = time[stop.index()];
    (
        Some(Schedule {
            ii,
            time,
            alternative,
            length,
        }),
        real_steps,
    )
}

#[allow(clippy::too_many_arguments)]
fn unschedule<O: SchedObserver>(
    problem: &Problem<'_>,
    victim: NodeId,
    evictor: NodeId,
    time: &mut [Option<i64>],
    mrt: &mut Mrt,
    alternative: &[usize],
    unscheduled: &mut usize,
    worklist: &mut BinaryHeap<Cand>,
    heights: &[i64],
    counters: &mut Counters,
    observer: &mut O,
) {
    counters.evictions += 1;
    observer.op_evicted(victim, evictor);
    let t = time[victim.index()]
        .take()
        .expect("only scheduled operations are displaced");
    if let Some(info) = problem.info(victim) {
        mrt.remove(victim, info.alternatives[alternative[victim.index()]].mask(), t);
    }
    *unscheduled += 1;
    // Reinsert into the priority worklist so the displaced operation
    // competes for the next scheduling step again.
    worklist.push(Cand {
        height: heights[victim.index()],
        node: victim,
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::validate::validate_schedule;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::{cydra, cydra_simple, minimal, single_alu, wide};

    fn chain<'m>(machine: &'m ims_machine::MachineModel, ops: &[Opcode]) -> Problem<'m> {
        let mut pb = ProblemBuilder::new(machine);
        let mut prev = None;
        for (i, &o) in ops.iter().enumerate() {
            let n = pb.add_op(o, OpId(i as u32));
            if let Some(p) = prev {
                let d = machine.latency(ops[i - 1]) as i64;
                pb.add_dep(p, n, d, 0, DepKind::Flow, false);
            }
            prev = Some(n);
        }
        pb.finish()
    }

    #[test]
    fn trivial_chain_schedules_at_resmii() {
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Mul, Opcode::Add]);
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.schedule.ii, 3); // single unit, 3 ops
        assert_eq!(out.delta_ii(), 0);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        // Simple loop: scheduled in one pass, once per op.
        assert_eq!(out.stats.final_steps(), 3);
    }

    #[test]
    fn recurrence_limits_ii() {
        let m = wide(4);
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 2, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 2, 1, DepKind::Flow, false); // cycle delay 4, dist 1
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.mii.rec_mii, 4);
        assert_eq!(out.schedule.ii, 4);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn overlap_across_iterations_happens() {
        // On wide(4) with latency-2 ops, a 4-op independent loop has
        // ResMII 1: four iterations in flight at once.
        let m = wide(4);
        let mut pb = ProblemBuilder::new(&m);
        for i in 0..4 {
            let _ = pb.add_op(Opcode::Add, OpId(i));
        }
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.schedule.ii, 1);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        assert!(out.schedule.stage_count() >= 1);
    }

    #[test]
    fn complex_tables_force_iteration_but_still_succeed() {
        // Loads + arithmetic on the complex Cydra model exercise
        // displacement; the schedule must still validate.
        let m = cydra();
        let mut pb = ProblemBuilder::new(&m);
        let l1 = pb.add_op(Opcode::Load, OpId(0));
        let l2 = pb.add_op(Opcode::Load, OpId(1));
        let mul = pb.add_op(Opcode::Mul, OpId(2));
        let acc = pb.add_op(Opcode::Add, OpId(3));
        let p1 = pb.add_op(Opcode::AddrAdd, OpId(4));
        let p2 = pb.add_op(Opcode::AddrAdd, OpId(5));
        pb.add_dep(l1, mul, 20, 0, DepKind::Flow, false);
        pb.add_dep(l2, mul, 20, 0, DepKind::Flow, false);
        pb.add_dep(mul, acc, 5, 0, DepKind::Flow, false);
        pb.add_dep(acc, acc, 4, 1, DepKind::Flow, false);
        pb.add_dep(p1, p1, 3, 1, DepKind::Flow, false);
        pb.add_dep(p2, p2, 3, 1, DepKind::Flow, false);
        pb.add_dep(p1, l1, 3, 1, DepKind::Flow, false);
        pb.add_dep(p2, l2, 3, 1, DepKind::Flow, false);
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(6.0)).unwrap();
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        // Dot-product-like loop: the accumulator recurrence (delay 4) and
        // the shared source bus (2 arith ops) both allow II 4; loads allow
        // II 1 per port... MII should be 4.
        assert_eq!(out.mii.mii, 4);
    }

    #[test]
    fn divide_blocks_the_multiplier() {
        let m = cydra_simple();
        let mut pb = ProblemBuilder::new(&m);
        let _ = pb.add_op(Opcode::Div, OpId(0));
        let _ = pb.add_op(Opcode::Mul, OpId(1));
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        // Divide occupies the multiplier for 20 cycles; the extra multiply
        // needs one more.
        assert_eq!(out.mii.res_mii, 21);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn budget_exhaustion_escalates_ii() {
        // A tiny budget forces failures at small IIs; the scheduler must
        // still terminate with a valid (if larger-II) schedule.
        let m = minimal();
        let p = chain(&m, &[Opcode::Add; 8]);
        let out = modulo_schedule(&p, &SchedConfig::new().budget_ratio(1.0)).unwrap();
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        assert!(out.schedule.ii >= out.mii.mii);
    }

    #[test]
    fn attempts_are_recorded_in_order() {
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Add]);
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert!(!out.stats.attempts.is_empty());
        assert!(out.stats.attempts.last().unwrap().succeeded);
        assert_eq!(out.stats.attempts.last().unwrap().ii, out.schedule.ii);
        assert!(out.stats.total_steps() >= out.stats.final_steps());
    }

    #[test]
    fn budget_exhaustion_up_to_the_cap_is_a_structured_error() {
        // A budget too small to schedule the loop (one real step for two
        // operations) fails at every candidate II; the cap turns that into
        // an error instead of an infinite search.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();
        let err = modulo_schedule(
            &p,
            // budget rounds up to 1 real step of the 2 needed
            &SchedConfig::new().budget_ratio(0.1).max_ii(3),
        )
        .unwrap_err();
        match err {
            ScheduleError::BudgetExhausted { last_ii, spent } => {
                assert_eq!(last_ii, 3, "every II up to the cap was attempted");
                assert!(spent >= 1, "each failed attempt spent its one step");
            }
            other => panic!("expected BudgetExhausted, got {other:?}"),
        }
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn ii_cap_below_mii_is_rejected_without_an_attempt() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 5, 1, DepKind::Flow, false); // RecMII 5
        let p = pb.finish();
        let err = modulo_schedule(&p, &SchedConfig::new().max_ii(4)).unwrap_err();
        assert_eq!(err, ScheduleError::IiCapExceeded { mii: 5, max_ii: 4 });
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn budget_is_over_real_ops_and_pseudo_ops_are_free() {
        // Regression for the off-by-pseudo-ops budget: BudgetRatio 0.5 on a
        // single-operation loop gives the paper's budget ceil(0.5·1) = 1
        // real scheduling step — exactly enough, so the loop schedules at
        // its MII in one attempt with one step. The old accounting
        // (ceil(0.5·3) = 2 over all graph nodes, with START and STOP
        // placement both charged) ran out of budget before STOP at every
        // candidate II and pushed the loop into IiCapExceeded.
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let _ = pb.add_op(Opcode::Add, OpId(0));
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::new().budget_ratio(0.5)).unwrap();
        assert_eq!(out.schedule.ii, out.mii.mii);
        assert_eq!(out.stats.attempts.len(), 1, "first candidate II succeeds");
        assert_eq!(out.stats.final_steps(), 1, "exactly one real step spent");
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn empty_loop_schedules() {
        let m = minimal();
        let p = ProblemBuilder::new(&m).finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.schedule.length, 0);
        assert_eq!(out.schedule.ii, 1);
    }

    #[test]
    fn stage_count_matches_length() {
        let s = Schedule {
            ii: 4,
            time: vec![],
            alternative: vec![],
            length: 9,
        };
        assert_eq!(s.stage_count(), 3);
        let s0 = Schedule {
            ii: 4,
            time: vec![],
            alternative: vec![],
            length: 0,
        };
        assert_eq!(s0.stage_count(), 1);
    }

    #[test]
    fn schedule_times_are_nonnegative_and_start_is_zero() {
        let m = single_alu();
        let p = chain(&m, &[Opcode::Load, Opcode::Add, Opcode::Store]);
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.schedule.time_of(p.start()), 0);
        assert!(out.schedule.time.iter().all(|&t| t >= 0));
    }

    /// Vetoes every placement and/or rejects the first `reject` attempts.
    #[derive(Default)]
    struct StrictObserver {
        veto_all: bool,
        reject: usize,
        vetoes_asked: u64,
        accepts_asked: u64,
    }

    impl crate::SchedObserver for StrictObserver {
        fn placement_vetoed(&mut self, _: ims_graph::NodeId, _: i64) -> bool {
            self.vetoes_asked += 1;
            self.veto_all
        }
        fn attempt_accept(&mut self, _: i64, _: &Schedule) -> bool {
            self.accepts_asked += 1;
            if self.reject > 0 {
                self.reject -= 1;
                false
            } else {
                true
            }
        }
    }

    #[test]
    fn veto_of_every_slot_cannot_stall_the_scheduler() {
        // The forced-slot rule bypasses the veto, so even an observer that
        // vetoes every resource-free slot still yields a valid schedule.
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Mul, Opcode::Add]);
        let mut obs = StrictObserver {
            veto_all: true,
            ..Default::default()
        };
        let out = modulo_schedule_observed(&p, &SchedConfig::default(), &mut obs).unwrap();
        assert!(obs.vetoes_asked > 0, "the veto hook was consulted");
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn rejected_attempts_bump_the_ii() {
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Add]);
        let baseline = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        let mut obs = StrictObserver {
            reject: 2,
            ..Default::default()
        };
        let out = modulo_schedule_observed(&p, &SchedConfig::default(), &mut obs).unwrap();
        assert_eq!(out.schedule.ii, baseline.schedule.ii + 2);
        assert_eq!(obs.accepts_asked, 3, "each completed attempt was judged");
        // The rejected attempts are recorded as failures.
        let failed = out.stats.attempts.iter().filter(|a| !a.succeeded).count();
        assert_eq!(failed, 2);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn rejection_up_to_the_cap_is_pressure_infeasible_when_a_limit_is_set() {
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Add]);
        let cfg = SchedConfig::new().max_ii(5).pressure_limit(1);
        let mut obs = StrictObserver {
            reject: usize::MAX,
            ..Default::default()
        };
        let err = modulo_schedule_observed(&p, &cfg, &mut obs).unwrap_err();
        assert_eq!(
            err,
            ScheduleError::PressureInfeasible {
                limit: 1,
                last_ii: 5
            }
        );
        assert!(!err.to_string().is_empty());
    }

    #[test]
    fn rejection_without_a_limit_reports_budget_exhaustion() {
        // The acceptance seam is generic: without `pressure_limit` set the
        // error stays the plain cap-exhaustion one.
        let m = minimal();
        let p = chain(&m, &[Opcode::Add, Opcode::Add]);
        let cfg = SchedConfig::new().max_ii(4);
        let mut obs = StrictObserver {
            reject: usize::MAX,
            ..Default::default()
        };
        let err = modulo_schedule_observed(&p, &cfg, &mut obs).unwrap_err();
        assert!(matches!(err, ScheduleError::BudgetExhausted { last_ii: 4, .. }));
    }
}

#[cfg(test)]
mod extra_tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::validate::validate_schedule;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::figure1_machine;

    #[test]
    fn mii_can_be_structurally_unachievable() {
        // §2: "the MII is not necessarily an achievable lower bound". On
        // the literal Figure 1 machine, a mul feeding an add around a
        // distance-2 recurrence has MII 5, but the shared source and result
        // buses make II 5 impossible: t(add)-t(mul) must be 5 or 6, and
        // both collide (source bus at 5, result bus at 6). The scheduler
        // must discover II 6.
        let m = figure1_machine();
        let mut pb = ProblemBuilder::new(&m);
        let mul = pb.add_op(Opcode::Mul, OpId(0));
        let add = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(mul, add, 5, 0, DepKind::Flow, false);
        pb.add_dep(add, mul, 4, 2, DepKind::Flow, false);
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(8.0)).unwrap();
        assert_eq!(out.mii.mii, 5, "cycle delay 9 over distance 2");
        assert!(out.delta_ii() > 0, "II {} should exceed the MII", out.schedule.ii);
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        // The failed attempt at the MII is on record.
        assert!(!out.stats.attempts[0].succeeded);
    }

    #[test]
    fn scheduling_is_deterministic() {
        let m = figure1_machine();
        let build = || {
            let mut pb = ProblemBuilder::new(&m);
            let ops: Vec<_> = (0..6)
                .map(|i| {
                    pb.add_op(
                        if i % 2 == 0 { Opcode::Add } else { Opcode::Mul },
                        OpId(i),
                    )
                })
                .collect();
            for w in ops.windows(2) {
                pb.add_dep(w[0], w[1], 4, 0, DepKind::Flow, false);
            }
            pb.add_dep(ops[5], ops[0], 4, 3, DepKind::Flow, false);
            pb.finish()
        };
        let p1 = build();
        let p2 = build();
        let a = modulo_schedule(&p1, &SchedConfig::default()).unwrap();
        let b = modulo_schedule(&p2, &SchedConfig::default()).unwrap();
        assert_eq!(a.schedule, b.schedule);
        assert_eq!(a.stats.attempts.len(), b.stats.attempts.len());
    }

    #[test]
    fn displacement_is_exercised_on_tight_machines() {
        // A loop saturating the shared buses forces the iterative behaviour
        // (operations scheduled more than once) — the whole point of §3.
        let m = figure1_machine();
        let mut pb = ProblemBuilder::new(&m);
        for i in 0..6 {
            let _ = pb.add_op(if i % 2 == 0 { Opcode::Add } else { Opcode::Mul }, OpId(i));
        }
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(8.0)).unwrap();
        assert!(validate_schedule(&p, &out.schedule).is_ok());
        // Six single-cycle source-bus users need II >= 6.
        assert!(out.schedule.ii >= 6);
    }
}
