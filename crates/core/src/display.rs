//! Human-readable rendering of schedules.
//!
//! [`format_schedule`] renders the flat schedule (one line per operation)
//! and [`format_kernel`] renders the kernel the way compiler writers read
//! modulo schedules: one row per issue slot (`time mod II`), showing every
//! operation that occupies that row together with its stage.

use std::fmt::Write as _;

use crate::problem::{NodeKind, Problem};
use crate::sched::Schedule;

/// Renders one line per operation: issue time, stage, opcode, chosen
/// functional-unit alternative.
pub fn format_schedule(problem: &Problem<'_>, schedule: &Schedule) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "II = {}, schedule length = {}, {} stages",
        schedule.ii,
        schedule.length,
        schedule.stage_count()
    );
    let mut rows: Vec<_> = problem.op_nodes().collect();
    rows.sort_by_key(|&n| (schedule.time_of(n), n));
    for node in rows {
        if let NodeKind::Op { opcode, op } = problem.kind(node) {
            let t = schedule.time_of(node);
            let alt = &problem
                .info(node)
                .expect("op nodes have machine info")
                .alternatives[schedule.alternative[node.index()]];
            let _ = writeln!(
                out,
                "  t={t:<4} stage {:<2} slot {:<3} {op}: {opcode:<6} on {}",
                t / schedule.ii,
                t % schedule.ii,
                alt.fu
            );
        }
    }
    out
}

/// Renders the kernel: one row per issue slot modulo II.
pub fn format_kernel(problem: &Problem<'_>, schedule: &Schedule) -> String {
    let mut out = String::new();
    for slot in 0..schedule.ii {
        let _ = write!(out, "t%{slot:<3}|");
        for node in problem.op_nodes() {
            if schedule.time_of(node) % schedule.ii != slot {
                continue;
            }
            if let NodeKind::Op { opcode, .. } = problem.kind(node) {
                let _ = write!(
                    out,
                    " {opcode}({})",
                    schedule.time_of(node) / schedule.ii
                );
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::sched::{modulo_schedule, SchedConfig};
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;

    fn scheduled() -> (String, String) {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Load, OpId(0));
        let b = pb.add_op(Opcode::Add, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).unwrap();
        (format_schedule(&p, &out.schedule), format_kernel(&p, &out.schedule))
    }

    #[test]
    fn schedule_listing_names_every_op() {
        let (listing, _) = scheduled();
        assert!(listing.contains("load"), "{listing}");
        assert!(listing.contains("add"), "{listing}");
        assert!(listing.contains("II = 2"), "{listing}");
    }

    #[test]
    fn kernel_listing_has_ii_rows() {
        let (_, kernel) = scheduled();
        assert_eq!(kernel.lines().count(), 2);
        assert!(kernel.contains("t%0"), "{kernel}");
        assert!(kernel.contains("t%1"), "{kernel}");
    }
}
