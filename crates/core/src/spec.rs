//! Backend selection specs: the string-addressable half of the backend
//! API.
//!
//! [`BackendKind`] names a *leaf* scheduler; a [`BackendSpec`] names a
//! *selection* — either one leaf (`ims`, `exact`, `sat`) or a portfolio
//! of several (`portfolio(ims,exact,sat)`), the production answer for
//! mixed traffic where no single backend dominates. Every CLI `--backend`
//! flag and the `scheduled` wire format parse a `BackendSpec` via
//! `FromStr`; `Display` renders the canonical spelling (lowercase names,
//! comma-separated, no spaces), which is what the service cache key
//! hashes so equivalent spellings share cache entries.
//!
//! Parsing is purely syntactic: it accepts exactly the leaf names in
//! [`BackendKind::ALL`]. Whether an implementation is actually available
//! is a separate, later question answered by the
//! [`BackendRegistry`](crate::BackendRegistry) when the spec is resolved.

use std::fmt;
use std::str::FromStr;

use crate::backend::BackendKind;

/// A parsed backend selection: one leaf backend or a portfolio of them.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BackendSpec {
    /// A single backend: `ims`, `exact`, or `sat`.
    Leaf(BackendKind),
    /// `portfolio(a,b,...)` — run every member, keep the best schedule
    /// under a deterministic winner rule (lowest II, then member order).
    Portfolio(Vec<BackendKind>),
}

impl BackendSpec {
    /// The members this spec runs, in order (a leaf is a one-member
    /// slice).
    pub fn members(&self) -> &[BackendKind] {
        match self {
            BackendSpec::Leaf(kind) => std::slice::from_ref(kind),
            BackendSpec::Portfolio(members) => members,
        }
    }

    /// `Some(kind)` when the spec is a single leaf backend.
    pub fn as_leaf(&self) -> Option<BackendKind> {
        match self {
            BackendSpec::Leaf(kind) => Some(*kind),
            BackendSpec::Portfolio(_) => None,
        }
    }

    /// The canonical spelling (`Display` as a `String`): lowercase leaf
    /// names, `portfolio(a,b)` with no spaces. `parse(s).to_string()` is
    /// a fixed point, so cache keys built from it are spelling-invariant.
    pub fn canonical(&self) -> String {
        self.to_string()
    }
}

impl Default for BackendSpec {
    fn default() -> Self {
        BackendSpec::Leaf(BackendKind::Ims)
    }
}

impl From<BackendKind> for BackendSpec {
    fn from(kind: BackendKind) -> Self {
        BackendSpec::Leaf(kind)
    }
}

impl fmt::Display for BackendSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BackendSpec::Leaf(kind) => f.write_str(kind.name()),
            BackendSpec::Portfolio(members) => {
                f.write_str("portfolio(")?;
                for (i, m) in members.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    f.write_str(m.name())?;
                }
                f.write_str(")")
            }
        }
    }
}

/// Why a backend spec string did not parse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseBackendError {
    /// A token that is neither a leaf backend name nor a well-formed
    /// `portfolio(...)` form.
    Unknown {
        /// The offending token, verbatim.
        token: String,
    },
    /// `portfolio()` with no members.
    EmptyPortfolio,
}

impl ParseBackendError {
    /// The comma-separated list of names a spec may use.
    fn known_names() -> String {
        let names: Vec<&str> = BackendKind::ALL.iter().map(|k| k.name()).collect();
        names.join(", ")
    }
}

impl fmt::Display for ParseBackendError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseBackendError::Unknown { token } => write!(
                f,
                "unknown backend {token:?} (expected {}, or portfolio(a,b,...))",
                Self::known_names()
            ),
            ParseBackendError::EmptyPortfolio => write!(
                f,
                "portfolio() needs at least one member (members: {})",
                Self::known_names()
            ),
        }
    }
}

impl std::error::Error for ParseBackendError {}

impl FromStr for BackendSpec {
    type Err = ParseBackendError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let s = s.trim();
        if let Some(inner) = s
            .strip_prefix("portfolio(")
            .and_then(|rest| rest.strip_suffix(')'))
        {
            if inner.trim().is_empty() {
                return Err(ParseBackendError::EmptyPortfolio);
            }
            let members = inner
                .split(',')
                .map(|tok| {
                    let tok = tok.trim();
                    BackendKind::from_name(tok).ok_or_else(|| ParseBackendError::Unknown {
                        token: tok.to_string(),
                    })
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(BackendSpec::Portfolio(members))
        } else {
            BackendKind::from_name(s)
                .map(BackendSpec::Leaf)
                .ok_or_else(|| ParseBackendError::Unknown {
                    token: s.to_string(),
                })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_specs_parse_and_round_trip() {
        for kind in BackendKind::ALL {
            let spec: BackendSpec = kind.name().parse().unwrap();
            assert_eq!(spec, BackendSpec::Leaf(kind));
            assert_eq!(spec.as_leaf(), Some(kind));
            assert_eq!(spec.members(), &[kind]);
            assert_eq!(spec.to_string(), kind.name());
        }
    }

    #[test]
    fn portfolio_specs_parse_canonicalize_and_round_trip() {
        let spec: BackendSpec = "portfolio(ims,exact,sat)".parse().unwrap();
        assert_eq!(
            spec,
            BackendSpec::Portfolio(vec![BackendKind::Ims, BackendKind::Exact, BackendKind::Sat])
        );
        assert_eq!(spec.as_leaf(), None);

        // Whitespace-tolerant in, canonical out; canonical is a fixed point.
        let sloppy: BackendSpec = "  portfolio( ims , exact )  ".parse().unwrap();
        assert_eq!(sloppy.to_string(), "portfolio(ims,exact)");
        let again: BackendSpec = sloppy.to_string().parse().unwrap();
        assert_eq!(again, sloppy);

        // A one-member portfolio is legal and distinct from the leaf.
        let one: BackendSpec = "portfolio(sat)".parse().unwrap();
        assert_eq!(one.members(), &[BackendKind::Sat]);
        assert_ne!(one, BackendSpec::Leaf(BackendKind::Sat));
    }

    #[test]
    fn malformed_specs_name_the_bad_token() {
        let err = "magic".parse::<BackendSpec>().unwrap_err();
        assert_eq!(
            err,
            ParseBackendError::Unknown {
                token: "magic".into()
            }
        );
        let msg = err.to_string();
        assert!(msg.contains("\"magic\""), "{msg}");
        assert!(msg.contains("ims, exact, sat"), "{msg}");

        let err = "portfolio(ims,magic)".parse::<BackendSpec>().unwrap_err();
        assert_eq!(
            err,
            ParseBackendError::Unknown {
                token: "magic".into()
            }
        );

        assert_eq!(
            "portfolio()".parse::<BackendSpec>().unwrap_err(),
            ParseBackendError::EmptyPortfolio
        );

        // Unbalanced or nested forms degrade to Unknown on the whole token.
        assert!(matches!(
            "portfolio(ims".parse::<BackendSpec>(),
            Err(ParseBackendError::Unknown { .. })
        ));
        assert!(matches!(
            "portfolio(portfolio(ims))".parse::<BackendSpec>(),
            Err(ParseBackendError::Unknown { .. })
        ));
        assert!(matches!(
            "".parse::<BackendSpec>(),
            Err(ParseBackendError::Unknown { .. })
        ));
    }

    #[test]
    fn default_spec_is_the_iterative_scheduler() {
        assert_eq!(BackendSpec::default(), BackendSpec::Leaf(BackendKind::Ims));
        assert_eq!(BackendSpec::from(BackendKind::Sat).to_string(), "sat");
    }
}
