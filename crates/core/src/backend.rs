//! Pluggable scheduling backends.
//!
//! The paper's iterative scheduler is a heuristic: it walks candidate IIs
//! upward from the MII and keeps the first II at which its budgeted search
//! succeeds, so "achieved II = MII" is the only case in which its result
//! is *known* to be optimal. Measuring the heuristic's optimality gap —
//! the centerpiece of the exact-scheduling literature that followed Rau
//! (SMT- and SAT-based modulo schedulers) — needs a second scheduler that
//! proves lower bounds. [`SchedulerBackend`] is the seam both sit behind:
//! every backend consumes the same [`Problem`] and produces the same
//! [`Schedule`], so the validator, code generation, and the VLIW
//! simulator work unchanged regardless of which backend produced the
//! schedule, and harness code can be generic over the choice.
//!
//! Two implementations exist:
//!
//! * [`IterativeBackend`] (this crate) — the paper's algorithm, wrapping
//!   [`modulo_schedule`](crate::modulo_schedule). Its bounds are one-sided:
//!   `proved_lb` is the MII, `best_ub` the achieved II.
//! * `ExactBackend` (the `ims-exact` crate) — branch-and-bound search
//!   that either proves its schedule's II minimal or reports explicit
//!   [`IiBounds`] when its deadline/node budget runs out.

use crate::mii::MiiInfo;
use crate::observe::{NullObserver, SchedObserver};
use crate::problem::Problem;
use crate::sched::{modulo_schedule_observed, SchedConfig, Schedule, ScheduleError};
use crate::spec::BackendSpec;

/// Which *leaf* scheduling backend produced an event stream or outcome.
///
/// This is the stable-name enum of the wire format and the trace files:
/// every concrete scheduler has exactly one `BackendKind`, carried by the
/// `attempt_start` trace events (via [`SchedObserver::backend`]) so
/// traces from different backends are distinguishable after the fact.
/// Composite selections — `portfolio(a,b,...)` — are described by
/// [`BackendSpec`], which is what CLI flags and the service wire format
/// parse; a spec resolves to leaf backends through a
/// [`BackendRegistry`](crate::BackendRegistry).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub enum BackendKind {
    /// The paper's iterative modulo scheduler.
    #[default]
    Ims,
    /// The exact branch-and-bound scheduler (`ims-exact`).
    Exact,
    /// The CDCL SAT-solver backend (`ims-sat`).
    Sat,
}

impl BackendKind {
    /// Every leaf backend, in registry/display order.
    pub const ALL: [BackendKind; 3] = [BackendKind::Ims, BackendKind::Exact, BackendKind::Sat];

    /// The stable lowercase name used on the wire and in CLI flags.
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Ims => "ims",
            BackendKind::Exact => "exact",
            BackendKind::Sat => "sat",
        }
    }

    /// Resolves a stable leaf name produced by [`BackendKind::name`].
    /// Leaf names only; full backend selections (including
    /// `portfolio(...)`) parse via [`BackendSpec`]'s `FromStr`.
    pub fn from_name(s: &str) -> Option<BackendKind> {
        BackendKind::ALL.into_iter().find(|k| k.name() == s)
    }

    /// Parses a CLI/wire name produced by [`BackendKind::name`].
    #[deprecated(
        since = "0.1.0",
        note = "parse a full `BackendSpec` (FromStr) instead; use \
                `BackendKind::from_name` where only a leaf name is legal"
    )]
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::from_name(s)
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// What a backend knows about the loop's true minimum II.
///
/// `proved_lb ≤ II* ≤ best_ub`, where `II*` is the smallest II at which
/// any legal modulo schedule exists. A backend that proves optimality
/// reports `proved_lb == best_ub`; a heuristic (or an exact search that
/// hit its deadline) reports a gap.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IiBounds {
    /// Largest II proven to be a lower bound on `II*` (every smaller II
    /// is known infeasible).
    pub proved_lb: i64,
    /// Smallest II at which a legal schedule is in hand.
    pub best_ub: i64,
}

impl IiBounds {
    /// Bounds for a schedule proven optimal at `ii`.
    pub fn exact(ii: i64) -> IiBounds {
        IiBounds {
            proved_lb: ii,
            best_ub: ii,
        }
    }

    /// Whether the bounds pin the true minimum II exactly.
    pub fn is_exact(&self) -> bool {
        self.proved_lb == self.best_ub
    }

    /// `best_ub − proved_lb`: how much slack remains between the schedule
    /// in hand and the proven lower bound (0 when optimality is proven).
    pub fn gap(&self) -> i64 {
        self.best_ub - self.proved_lb
    }
}

/// The uniform result of a [`SchedulerBackend`] run.
#[derive(Debug, Clone, PartialEq)]
pub struct BackendOutcome {
    /// The best legal schedule found; `schedule.ii == bounds.best_ub`.
    pub schedule: Schedule,
    /// The MII bounds computed before scheduling.
    pub mii: MiiInfo,
    /// What the backend proved about the true minimum II.
    pub bounds: IiBounds,
    /// Backend-specific work measure: operation-scheduling steps for the
    /// iterative backend, branch-and-bound search nodes for the exact one.
    pub steps: u64,
}

impl BackendOutcome {
    /// Whether `schedule` is proven II-optimal.
    pub fn optimal(&self) -> bool {
        self.bounds.is_exact()
    }
}

/// A modulo scheduler: anything that turns a [`Problem`] into a legal
/// [`Schedule`] plus [`IiBounds`] on the true minimum II.
///
/// The trait is object-safe so harness code can pick a backend at
/// runtime (`--backend SPEC`, resolved through a
/// [`BackendRegistry`](crate::BackendRegistry)); the leaf
/// implementations also expose richer generic inherent `*_observed`
/// entry points for callers that know the concrete type.
pub trait SchedulerBackend {
    /// Which backend this is (stable name via [`BackendKind::name`]).
    ///
    /// Composite backends report a representative leaf (the portfolio
    /// reports its first member); [`SchedulerBackend::spec`] carries the
    /// full identity.
    fn kind(&self) -> BackendKind;

    /// The full selection this backend implements. Leaves return
    /// `BackendSpec::Leaf(self.kind())` (the default); the portfolio
    /// returns its member list.
    fn spec(&self) -> BackendSpec {
        BackendSpec::Leaf(self.kind())
    }

    /// Schedules `problem`, returning the best schedule found and the II
    /// bounds it proves.
    ///
    /// # Errors
    ///
    /// Backend-specific; the iterative backend forwards
    /// [`ScheduleError`], and the exact backend can only fail if its
    /// internal heuristic run (which provides the upper bound) fails.
    fn schedule(&self, problem: &Problem<'_>) -> Result<BackendOutcome, ScheduleError>;

    /// [`SchedulerBackend::schedule`] with scheduler events reported to
    /// `observer` — the object-safe counterpart of the leaves' generic
    /// inherent `schedule_observed` methods (which it forwards to via
    /// the `&mut O` blanket [`SchedObserver`] impl). The default
    /// ignores the observer.
    ///
    /// # Errors
    ///
    /// As [`SchedulerBackend::schedule`].
    fn schedule_observed_dyn(
        &self,
        problem: &Problem<'_>,
        observer: &mut dyn SchedObserver,
    ) -> Result<BackendOutcome, ScheduleError> {
        let _ = observer;
        self.schedule(problem)
    }
}

/// The paper's iterative modulo scheduler as a [`SchedulerBackend`].
///
/// Its lower bound is the MII — the iterative scheduler never proves
/// anything stronger — so `bounds.is_exact()` holds exactly when the
/// achieved II equals the MII.
///
/// ```
/// use ims_core::{IterativeBackend, ProblemBuilder, SchedConfig, SchedulerBackend};
/// use ims_ir::{OpId, Opcode};
/// use ims_machine::minimal;
///
/// let m = minimal();
/// let mut pb = ProblemBuilder::new(&m);
/// let _ = pb.add_op(Opcode::Add, OpId(0));
/// let problem = pb.finish();
///
/// let out = IterativeBackend::new(SchedConfig::default())
///     .schedule(&problem)
///     .unwrap();
/// assert!(out.optimal(), "a one-op loop schedules at its MII");
/// assert_eq!(out.bounds.proved_lb, out.mii.mii);
/// ```
#[derive(Debug, Clone, Default)]
pub struct IterativeBackend {
    config: SchedConfig,
}

impl IterativeBackend {
    /// A backend running with the given configuration.
    pub fn new(config: SchedConfig) -> Self {
        IterativeBackend { config }
    }

    /// The configuration this backend schedules with.
    pub fn config(&self) -> &SchedConfig {
        &self.config
    }

    /// [`SchedulerBackend::schedule`] with scheduler events reported to
    /// `observer`.
    ///
    /// # Errors
    ///
    /// As [`modulo_schedule`](crate::modulo_schedule).
    pub fn schedule_observed<O: SchedObserver>(
        &self,
        problem: &Problem<'_>,
        observer: &mut O,
    ) -> Result<BackendOutcome, ScheduleError> {
        let out = modulo_schedule_observed(problem, &self.config, observer)?;
        let steps = out.stats.total_steps();
        Ok(BackendOutcome {
            bounds: IiBounds {
                proved_lb: out.mii.mii,
                best_ub: out.schedule.ii,
            },
            mii: out.mii,
            schedule: out.schedule,
            steps,
        })
    }
}

impl SchedulerBackend for IterativeBackend {
    fn kind(&self) -> BackendKind {
        BackendKind::Ims
    }

    fn schedule(&self, problem: &Problem<'_>) -> Result<BackendOutcome, ScheduleError> {
        self.schedule_observed(problem, &mut NullObserver)
    }

    fn schedule_observed_dyn(
        &self,
        problem: &Problem<'_>,
        observer: &mut dyn SchedObserver,
    ) -> Result<BackendOutcome, ScheduleError> {
        let mut observer = observer;
        self.schedule_observed(problem, &mut observer)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ProblemBuilder;
    use crate::validate::validate_schedule;
    use ims_graph::DepKind;
    use ims_ir::{OpId, Opcode};
    use ims_machine::minimal;

    #[test]
    fn backend_kind_names_round_trip() {
        for kind in BackendKind::ALL {
            assert_eq!(BackendKind::from_name(kind.name()), Some(kind));
            assert_eq!(kind.to_string(), kind.name());
        }
        assert_eq!(BackendKind::from_name("simulated-annealing"), None);
        #[allow(deprecated)]
        {
            assert_eq!(BackendKind::parse("exact"), Some(BackendKind::Exact));
        }
    }

    #[test]
    fn ii_bounds_accessors() {
        let exact = IiBounds::exact(4);
        assert!(exact.is_exact());
        assert_eq!(exact.gap(), 0);
        let loose = IiBounds {
            proved_lb: 3,
            best_ub: 5,
        };
        assert!(!loose.is_exact());
        assert_eq!(loose.gap(), 2);
    }

    #[test]
    fn iterative_backend_matches_modulo_schedule_and_is_object_safe() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        let b = pb.add_op(Opcode::Mul, OpId(1));
        pb.add_dep(a, b, 1, 0, DepKind::Flow, false);
        pb.add_dep(b, a, 1, 1, DepKind::Flow, false);
        let p = pb.finish();

        let backend: Box<dyn SchedulerBackend> = Box::new(IterativeBackend::default());
        assert_eq!(backend.kind(), BackendKind::Ims);
        let out = backend.schedule(&p).unwrap();
        let reference =
            crate::sched::modulo_schedule(&p, &SchedConfig::default()).unwrap();
        assert_eq!(out.schedule, reference.schedule);
        assert_eq!(out.bounds.proved_lb, reference.mii.mii);
        assert_eq!(out.bounds.best_ub, reference.schedule.ii);
        assert_eq!(out.steps, reference.stats.total_steps());
        assert!(validate_schedule(&p, &out.schedule).is_ok());
    }

    #[test]
    fn iterative_backend_forwards_errors() {
        let m = minimal();
        let mut pb = ProblemBuilder::new(&m);
        let a = pb.add_op(Opcode::Add, OpId(0));
        pb.add_dep(a, a, 5, 1, DepKind::Flow, false); // RecMII 5
        let p = pb.finish();
        let err = IterativeBackend::new(SchedConfig::new().max_ii(4))
            .schedule(&p)
            .unwrap_err();
        assert_eq!(err, ScheduleError::IiCapExceeded { mii: 5, max_ii: 4 });
    }
}
