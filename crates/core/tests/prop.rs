//! Property tests for the core scheduler structures.

use ims_core::{
    compute_mii, iterative_schedule, modulo_schedule, validate_schedule, Counters, Mrt,
    ProblemBuilder, SchedConfig,
};
use ims_graph::{DepKind, NodeId};
use ims_ir::{OpId, Opcode};
use ims_machine::{minimal, wide, ReservationTable, ResourceId};
use proptest::prelude::*;

/// Strategy for random acyclic-plus-backedge problems on a given machine.
fn problem_edges() -> impl Strategy<Value = (usize, Vec<(usize, usize, u32)>)> {
    (2usize..12).prop_flat_map(|n| {
        (
            Just(n),
            proptest::collection::vec((0..n, 0..n, 0u32..3), 0..2 * n),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn random_problems_schedule_and_validate((n, edges) in problem_edges()) {
        let machine = wide(3);
        let mut pb = ProblemBuilder::new(&machine);
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| pb.add_op(Opcode::Add, OpId(i as u32)))
            .collect();
        for (a, b, dist) in edges {
            // Keep zero-distance edges forward-only so the same-iteration
            // subgraph stays acyclic (a well-formed dependence graph).
            let (from, to, dist) = if dist == 0 && a >= b {
                (b, a, if a == b { 1 } else { 0 })
            } else {
                (a, b, dist)
            };
            pb.add_dep(nodes[from], nodes[to], 2, dist, DepKind::Flow, false);
        }
        let p = pb.finish();
        let out = modulo_schedule(&p, &SchedConfig::default()).expect("schedules");
        prop_assert!(validate_schedule(&p, &out.schedule).is_ok());
        prop_assert!(out.schedule.ii >= out.mii.mii);
        prop_assert!(out.schedule.length >= 0);
    }

    #[test]
    fn mii_is_a_true_lower_bound((n, edges) in problem_edges()) {
        // Schedule at II = MII - 1 must always fail (the bound is sound).
        let machine = minimal();
        let mut pb = ProblemBuilder::new(&machine);
        let nodes: Vec<NodeId> = (0..n)
            .map(|i| pb.add_op(Opcode::Add, OpId(i as u32)))
            .collect();
        for (a, b, dist) in edges {
            let (from, to, dist) = if dist == 0 && a >= b {
                (b, a, if a == b { 1 } else { 0 })
            } else {
                (a, b, dist)
            };
            pb.add_dep(nodes[from], nodes[to], 1, dist, DepKind::Flow, false);
        }
        let p = pb.finish();
        let mii = compute_mii(&p, &mut Counters::new());
        // Only probe below the MII when recurrences still permit it:
        // HeightR (correctly) diverges for IIs below the RecMII.
        let pure_rec = ims_core::rec_mii(&p, 1, &mut Counters::new());
        if mii.mii > 1 && mii.mii - 1 >= pure_rec {
            let (result, _) = iterative_schedule(&p, mii.mii - 1, 10_000, &mut Counters::new());
            if let Some(s) = result {
                // If something was produced below the MII it must be invalid
                // ... which iterative_schedule never produces: placements
                // honour the MRT and displacement; but recurrences can make
                // it spin forever instead. Either way a *valid* schedule
                // below MII is impossible.
                prop_assert!(
                    validate_schedule(&p, &s).is_err(),
                    "valid schedule below the MII"
                );
            }
        }
    }

    #[test]
    fn mrt_place_remove_roundtrip(ops in proptest::collection::vec((0u32..4, 0i64..40), 1..30)) {
        let ii = 7;
        let mut mrt = Mrt::new(ii, 4);
        let table = |r: u32| ReservationTable::new(vec![(ResourceId(r), 0), (ResourceId(r), 2)]);
        let mut placed: Vec<(NodeId, u32, i64)> = Vec::new();
        for (i, (r, t)) in ops.into_iter().enumerate() {
            let tab = table(r);
            if !mrt.conflicts(&tab, t) {
                mrt.place(NodeId(i as u32), &tab, t);
                placed.push((NodeId(i as u32), r, t));
            }
        }
        // Remove everything; the table must end empty.
        for (node, r, t) in placed {
            mrt.remove(node, &table(r), t);
        }
        for t in 0..ii {
            for r in 0..4 {
                prop_assert!(mrt.occupant(t, r).is_none());
            }
        }
    }
}
