//! Property tests for the core scheduler structures, on the in-repo
//! [`ims_testkit::prop`] harness (seeded cases, halving shrinker,
//! persisted regression seeds).

use ims_core::{
    compute_mii, iterative_schedule, modulo_schedule, validate_schedule, Counters, Mrt,
    ProblemBuilder, SchedConfig,
};
use ims_graph::{DepKind, NodeId};
use ims_ir::{OpId, Opcode};
use ims_machine::{minimal, wide, MachineModel, ReservationTable, ResourceId};
use ims_testkit::{check, prop_assert, prop_assert_eq, Gen, PropConfig, Regression};

/// A generated problem shape: node count plus raw `(from, to, distance)`
/// edge triples (delay is fixed by the caller).
type Edges = (usize, Vec<(usize, usize, u32)>);

/// Generator for random acyclic-plus-backedge problem shapes.
fn gen_edges(g: &mut Gen) -> Edges {
    let n = g.usize_in(2, 12);
    let edges = g.vec_with(2 * n, |g| {
        (
            g.usize_in(0, n),
            g.usize_in(0, n),
            g.u32_in(0, 3),
        )
    });
    (n, edges)
}

/// Builds a well-formed problem from a generated shape: zero-distance
/// edges are forced forward so the same-iteration subgraph stays acyclic.
fn build_problem<'m>(
    machine: &'m MachineModel,
    n: usize,
    edges: &[(usize, usize, u32)],
    delay: i64,
) -> ims_core::Problem<'m> {
    let mut pb = ProblemBuilder::new(machine);
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| pb.add_op(Opcode::Add, OpId(i as u32)))
        .collect();
    for &(a, b, dist) in edges {
        let (from, to, dist) = if dist == 0 && a >= b {
            (b, a, if a == b { 1 } else { 0 })
        } else {
            (a, b, dist)
        };
        pb.add_dep(nodes[from], nodes[to], delay, dist, DepKind::Flow, false);
    }
    pb.finish()
}

#[test]
fn random_problems_schedule_and_validate() {
    check(
        "random_problems_schedule_and_validate",
        &PropConfig::with_cases(96),
        // Ported from the proptest-era regression file
        // (crates/core/tests/prop.proptest-regressions); the shrunk case it
        // recorded is also pinned explicitly in
        // `legacy_regression_two_node_cycle` below.
        &[Regression::new(0x7ba9_315a_2749_2963, 8)],
        gen_edges,
        |(n, edges)| {
            let machine = wide(3);
            let p = build_problem(&machine, *n, edges, 2);
            let out = modulo_schedule(&p, &SchedConfig::default()).expect("schedules");
            prop_assert!(validate_schedule(&p, &out.schedule).is_ok());
            prop_assert!(out.schedule.ii >= out.mii.mii);
            prop_assert!(out.schedule.length >= 0);
            Ok(())
        },
    );
}

/// The one failure case the proptest run of this suite ever shrank to,
/// preserved verbatim so the migration to `ims-testkit` loses no history:
/// `(n, edges) = (2, [(1, 0, 1), (0, 1, 0)])` — a two-node cycle with one
/// loop-carried edge.
#[test]
fn legacy_regression_two_node_cycle() {
    let machine = wide(3);
    let p = build_problem(&machine, 2, &[(1, 0, 1), (0, 1, 0)], 2);
    let out = modulo_schedule(&p, &SchedConfig::default()).expect("schedules");
    assert!(validate_schedule(&p, &out.schedule).is_ok());
    assert!(out.schedule.ii >= out.mii.mii);
    assert!(out.schedule.length >= 0);
}

#[test]
fn mii_is_a_true_lower_bound() {
    check(
        "mii_is_a_true_lower_bound",
        &PropConfig::with_cases(96),
        &[],
        gen_edges,
        |(n, edges)| {
            // Schedule at II = MII - 1 must always fail (the bound is sound).
            let machine = minimal();
            let p = build_problem(&machine, *n, edges, 1);
            let mii = compute_mii(&p, &mut Counters::new());
            // Only probe below the MII when recurrences still permit it:
            // HeightR (correctly) diverges for IIs below the RecMII.
            let pure_rec = ims_core::rec_mii(&p, 1, &mut Counters::new());
            if mii.mii > 1 && mii.mii - 1 >= pure_rec {
                let (result, _) =
                    iterative_schedule(&p, mii.mii - 1, 10_000, &mut Counters::new());
                if let Some(s) = result {
                    // If something was produced below the MII it must be
                    // invalid ... which iterative_schedule never produces:
                    // placements honour the MRT and displacement; but
                    // recurrences can make it spin forever instead. Either
                    // way a *valid* schedule below MII is impossible.
                    prop_assert!(
                        validate_schedule(&p, &s).is_err(),
                        "valid schedule below the MII"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn mrt_place_remove_roundtrip() {
    check(
        "mrt_place_remove_roundtrip",
        &PropConfig::with_cases(96),
        &[],
        |g| {
            let len = g.usize_in(1, 30);
            (0..len)
                .map(|_| (g.u32_in(0, 4), g.i64_in(0, 40)))
                .collect::<Vec<(u32, i64)>>()
        },
        |ops| {
            let ii = 7;
            let mut mrt = Mrt::new(ii, 4);
            let table =
                |r: u32| ReservationTable::new(vec![(ResourceId(r), 0), (ResourceId(r), 2)]);
            let mut placed: Vec<(NodeId, u32, i64)> = Vec::new();
            for (i, &(r, t)) in ops.iter().enumerate() {
                let tab = table(r);
                if !mrt.conflicts(&tab, t) {
                    mrt.place(NodeId(i as u32), &tab, t);
                    placed.push((NodeId(i as u32), r, t));
                }
            }
            // Remove everything; the table must end empty.
            for (node, r, t) in placed {
                mrt.remove(node, &table(r), t);
            }
            for t in 0..ii {
                for r in 0..4 {
                    prop_assert_eq!(mrt.occupant(t, r), None);
                }
            }
            Ok(())
        },
    );
}
