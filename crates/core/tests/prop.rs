//! Property tests for the core scheduler structures, on the in-repo
//! [`ims_testkit::prop`] harness (seeded cases, halving shrinker,
//! persisted regression seeds).

use ims_core::{
    compute_mii, iterative_schedule, modulo_schedule, validate_schedule, Counters, Mrt,
    ProblemBuilder, SchedConfig,
};
use ims_graph::{DepKind, NodeId};
use ims_ir::{OpId, Opcode};
use ims_machine::{minimal, wide, ConflictMask, MachineModel, ReservationTable, ResourceId};
use ims_testkit::{check, prop_assert, prop_assert_eq, Gen, PropConfig, Regression};

/// A generated problem shape: node count plus raw `(from, to, distance)`
/// edge triples (delay is fixed by the caller).
type Edges = (usize, Vec<(usize, usize, u32)>);

/// Generator for random acyclic-plus-backedge problem shapes.
fn gen_edges(g: &mut Gen) -> Edges {
    let n = g.usize_in(2, 12);
    let edges = g.vec_with(2 * n, |g| {
        (
            g.usize_in(0, n),
            g.usize_in(0, n),
            g.u32_in(0, 3),
        )
    });
    (n, edges)
}

/// Builds a well-formed problem from a generated shape: zero-distance
/// edges are forced forward so the same-iteration subgraph stays acyclic.
fn build_problem<'m>(
    machine: &'m MachineModel,
    n: usize,
    edges: &[(usize, usize, u32)],
    delay: i64,
) -> ims_core::Problem<'m> {
    let mut pb = ProblemBuilder::new(machine);
    let nodes: Vec<NodeId> = (0..n)
        .map(|i| pb.add_op(Opcode::Add, OpId(i as u32)))
        .collect();
    for &(a, b, dist) in edges {
        let (from, to, dist) = if dist == 0 && a >= b {
            (b, a, if a == b { 1 } else { 0 })
        } else {
            (a, b, dist)
        };
        pb.add_dep(nodes[from], nodes[to], delay, dist, DepKind::Flow, false);
    }
    pb.finish()
}

#[test]
fn random_problems_schedule_and_validate() {
    check(
        "random_problems_schedule_and_validate",
        &PropConfig::with_cases(96),
        // Ported from the proptest-era regression file
        // (crates/core/tests/prop.proptest-regressions); the shrunk case it
        // recorded is also pinned explicitly in
        // `legacy_regression_two_node_cycle` below.
        &[Regression::new(0x7ba9_315a_2749_2963, 8)],
        gen_edges,
        |(n, edges)| {
            let machine = wide(3);
            let p = build_problem(&machine, *n, edges, 2);
            let out = modulo_schedule(&p, &SchedConfig::default()).expect("schedules");
            prop_assert!(validate_schedule(&p, &out.schedule).is_ok());
            prop_assert!(out.schedule.ii >= out.mii.mii);
            prop_assert!(out.schedule.length >= 0);
            Ok(())
        },
    );
}

/// The one failure case the proptest run of this suite ever shrank to,
/// preserved verbatim so the migration to `ims-testkit` loses no history:
/// `(n, edges) = (2, [(1, 0, 1), (0, 1, 0)])` — a two-node cycle with one
/// loop-carried edge.
#[test]
fn legacy_regression_two_node_cycle() {
    let machine = wide(3);
    let p = build_problem(&machine, 2, &[(1, 0, 1), (0, 1, 0)], 2);
    let out = modulo_schedule(&p, &SchedConfig::default()).expect("schedules");
    assert!(validate_schedule(&p, &out.schedule).is_ok());
    assert!(out.schedule.ii >= out.mii.mii);
    assert!(out.schedule.length >= 0);
}

#[test]
fn mii_is_a_true_lower_bound() {
    check(
        "mii_is_a_true_lower_bound",
        &PropConfig::with_cases(96),
        &[],
        gen_edges,
        |(n, edges)| {
            // Schedule at II = MII - 1 must always fail (the bound is sound).
            let machine = minimal();
            let p = build_problem(&machine, *n, edges, 1);
            let mii = compute_mii(&p, &mut Counters::new());
            // Only probe below the MII when recurrences still permit it:
            // HeightR (correctly) diverges for IIs below the RecMII.
            let pure_rec = ims_core::rec_mii(&p, 1, &mut Counters::new());
            if mii.mii > 1 && mii.mii - 1 >= pure_rec {
                let (result, _) =
                    iterative_schedule(&p, mii.mii - 1, 10_000, &mut Counters::new());
                if let Some(s) = result {
                    // If something was produced below the MII it must be
                    // invalid ... which iterative_schedule never produces:
                    // placements honour the MRT and displacement; but
                    // recurrences can make it spin forever instead. Either
                    // way a *valid* schedule below MII is impossible.
                    prop_assert!(
                        validate_schedule(&p, &s).is_err(),
                        "valid schedule below the MII"
                    );
                }
            }
            Ok(())
        },
    );
}

#[test]
fn mrt_place_remove_roundtrip() {
    check(
        "mrt_place_remove_roundtrip",
        &PropConfig::with_cases(96),
        &[],
        |g| {
            let len = g.usize_in(1, 30);
            (0..len)
                .map(|_| (g.u32_in(0, 4), g.i64_in(0, 40)))
                .collect::<Vec<(u32, i64)>>()
        },
        |ops| {
            let ii = 7;
            let mut mrt = Mrt::new(ii, 4);
            let table =
                |r: u32| ReservationTable::new(vec![(ResourceId(r), 0), (ResourceId(r), 2)]);
            let mask = |r: u32| ConflictMask::compile(&table(r), 4);
            let mut placed: Vec<(NodeId, u32, i64)> = Vec::new();
            for (i, &(r, t)) in ops.iter().enumerate() {
                let m = mask(r);
                if !mrt.conflicts(&m, t) {
                    mrt.place(NodeId(i as u32), &m, t);
                    placed.push((NodeId(i as u32), r, t));
                }
            }
            // Remove everything; the table must end empty.
            for (node, r, t) in placed {
                mrt.remove(node, &mask(r), t);
            }
            for t in 0..ii {
                for r in 0..4 {
                    prop_assert_eq!(mrt.occupant(t, r), None);
                }
            }
            prop_assert!(mrt.occupancy_words().iter().all(|&w| w == 0));
            Ok(())
        },
    );
}

/// The pre-bitset modulo reservation table, reimplemented naively from
/// the paper's definition: an `Option<NodeId>` per `((time + off) mod II,
/// resource)` cell, probed and updated one `(resource, offset)` pair at a
/// time straight off the [`ReservationTable`]. The equivalence oracle for
/// the word-parallel [`Mrt`] — it shares no code with the bitset path, so
/// a mask-compilation or occupancy-maintenance bug cannot hide in both.
struct RefMrt {
    ii: i64,
    nres: usize,
    slots: Vec<Option<NodeId>>,
}

impl RefMrt {
    fn new(ii: i64, nres: usize) -> Self {
        RefMrt {
            ii,
            nres,
            slots: vec![None; ii as usize * nres],
        }
    }

    fn cell(&self, time: i64, r: ResourceId, off: u32) -> usize {
        (time + off as i64).rem_euclid(self.ii) as usize * self.nres + r.index()
    }

    fn conflicts(&self, table: &ReservationTable, time: i64) -> bool {
        table
            .uses()
            .iter()
            .any(|&(r, off)| self.slots[self.cell(time, r, off)].is_some())
    }

    fn conflicting_nodes(&self, table: &ReservationTable, time: i64) -> Vec<NodeId> {
        let mut out: Vec<NodeId> = Vec::new();
        for &(r, off) in table.uses() {
            if let Some(n) = self.slots[self.cell(time, r, off)] {
                if !out.contains(&n) {
                    out.push(n);
                }
            }
        }
        out.sort_unstable();
        out
    }

    fn place(&mut self, node: NodeId, table: &ReservationTable, time: i64) {
        for &(r, off) in table.uses() {
            let c = self.cell(time, r, off);
            assert!(self.slots[c].is_none());
            self.slots[c] = Some(node);
        }
    }

    fn remove(&mut self, node: NodeId, table: &ReservationTable, time: i64) {
        for &(r, off) in table.uses() {
            let c = self.cell(time, r, off);
            assert_eq!(self.slots[c], Some(node));
            self.slots[c] = None;
        }
    }
}

/// A generated MRT workload: II, resource count, a pool of random
/// reservation-table shapes, and a probe/install/evict script over them.
type MrtScript = (i64, usize, Vec<Vec<(u32, u32)>>, Vec<(usize, i64, u8)>);

fn gen_mrt_script(g: &mut Gen) -> MrtScript {
    // Gen ranges are half-open [lo, hi).
    let ii = g.i64_in(1, 10);
    let nres = g.usize_in(1, 7);
    let ntables = g.usize_in(1, 6);
    let tables = (0..ntables)
        .map(|_| {
            let len = g.usize_in(1, 6);
            (0..len)
                .map(|_| (g.u32_in(0, nres as u32), g.u32_in(0, 13)))
                .collect()
        })
        .collect();
    let script = g.vec_with(40, |g| {
        (
            g.usize_in(0, ntables),
            g.i64_in(-10, 31),
            // 0: probe only, 1: place if free, 2: evict conflicts,
            // 3: clear the whole table (tests base-cache invalidation).
            g.u32_in(0, 4) as u8,
        )
    });
    (ii, nres, tables, script)
}

#[test]
fn bitset_mrt_agrees_with_reference_scan() {
    // The §5d equivalence oracle: drive the word-parallel Mrt and the
    // naive per-resource RefMrt through the same random probe / install /
    // evict script built from ims-testkit-generated reservation tables,
    // and demand identical answers at every step — conflict verdicts
    // (bitset, scan entry point, and oracle), colliding-node sets, and
    // the final occupant map.
    check(
        "bitset_mrt_agrees_with_reference_scan",
        &PropConfig::with_cases(128),
        &[],
        gen_mrt_script,
        |(ii, nres, tables, script)| {
            let (ii, nres) = (*ii, *nres);
            let tabs: Vec<ReservationTable> = tables
                .iter()
                .map(|uses| {
                    ReservationTable::new(
                        uses.iter().map(|&(r, t)| (ResourceId(r), t)).collect(),
                    )
                })
                .collect();
            let masks: Vec<ConflictMask> =
                tabs.iter().map(|t| ConflictMask::compile(t, nres)).collect();
            let mut mrt = Mrt::new(ii, nres);
            let mut oracle = RefMrt::new(ii, nres);
            let mut next_node = 0u32;
            let mut placed: Vec<(NodeId, usize, i64)> = Vec::new();
            for &(ti, t, action) in script {
                let (tab, mask) = (&tabs[ti], &masks[ti]);
                let hit = mrt.conflicts(mask, t);
                prop_assert_eq!(hit, oracle.conflicts(tab, t), "probe at {}", t);
                prop_assert_eq!(hit, mrt.conflicts_scan(tab, t), "scan entry point at {}", t);
                prop_assert_eq!(
                    mrt.conflicting_nodes(mask, t),
                    oracle.conflicting_nodes(tab, t),
                    "colliding sets at {}",
                    t
                );
                // A table whose offsets are congruent modulo the II needs
                // the same MRT cell twice; `place` panics on those by
                // contract (in the bitset Mrt exactly as in the scan one),
                // so the script skips such placements — as the scheduler
                // does, whose machines never self-collide at feasible IIs.
                let self_collides = {
                    let mut cells: Vec<(i64, u32)> = tab
                        .uses()
                        .iter()
                        .map(|&(r, off)| ((t + off as i64).rem_euclid(ii), r.0))
                        .collect();
                    cells.sort_unstable();
                    let n = cells.len();
                    cells.dedup();
                    cells.len() != n
                };
                match action {
                    1 if !hit && !self_collides => {
                        let node = NodeId(next_node);
                        next_node += 1;
                        mrt.place(node, mask, t);
                        oracle.place(node, tab, t);
                        placed.push((node, ti, t));
                    }
                    2 => {
                        // Evict every collider, exactly as the §3.4 forced
                        // placement does.
                        for victim in mrt.conflicting_nodes(mask, t) {
                            let k = placed
                                .iter()
                                .position(|&(n, _, _)| n == victim)
                                .expect("collider was placed");
                            let (n, vti, vt) = placed.swap_remove(k);
                            mrt.remove(n, &masks[vti], vt);
                            oracle.remove(n, &tabs[vti], vt);
                        }
                    }
                    3 => {
                        // Wipe the table mid-script. The probes that warmed
                        // the base cache just above make this the stale-base
                        // trap: a clear that failed to invalidate it would
                        // desynchronize the next probe from the oracle
                        // (which recomputes every reduction from scratch).
                        mrt.clear();
                        oracle = RefMrt::new(ii, nres);
                        placed.clear();
                    }
                    _ => {}
                }
                // Occupant maps stay identical cell-for-cell.
                for row in 0..ii {
                    for r in 0..nres {
                        prop_assert_eq!(
                            mrt.occupant(row, r),
                            oracle.slots[row as usize * nres + r],
                            "occupant ({}, {})",
                            row,
                            r
                        );
                    }
                }
            }
            Ok(())
        },
    );
}
