#!/usr/bin/env bash
# Canonical hermetic verification: build, test, and document the whole
# workspace with the network disabled. Run from the repository root.
#
# The workspace has no external dependencies — a bare Rust toolchain and an
# empty registry cache are enough for every step below to succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> corpus determinism across thread counts"
t1_log=$(mktemp)
t4_log=$(mktemp)
doc_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 1 >"$t1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 4 >"$t4_log" 2>/dev/null
if ! diff -q "$t1_log" "$t4_log" >/dev/null; then
    echo "FAIL: corpus output differs between --threads 1 and --threads 4" >&2
    diff "$t1_log" "$t4_log" | head >&2
    exit 1
fi
echo "    byte-identical at --threads 1 and --threads 4 (120 loops)"

echo "==> cargo doc --no-deps --offline (warnings are errors)"
cargo doc --no-deps --offline --workspace 2>&1 | tee "$doc_log"
if grep -q "^warning" "$doc_log"; then
    echo "FAIL: rustdoc emitted warnings" >&2
    exit 1
fi

echo "OK: build, tests, and docs all clean offline"
