#!/usr/bin/env bash
# Canonical hermetic verification: build, test, and document the whole
# workspace with the network disabled. Run from the repository root.
#
# The workspace has no external dependencies — a bare Rust toolchain and an
# empty registry cache are enough for every step below to succeed.
#
# Profiling artifacts (BENCH_*.json snapshots and per-loop trace
# directories) are left under target/bench/ so CI can upload them.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

bench_dir=target/bench
rm -rf "$bench_dir"
mkdir -p "$bench_dir"

echo "==> corpus determinism across thread counts (with --profile)"
t1_log=$(mktemp)
t4_log=$(mktemp)
doc_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 1 --profile "$bench_dir/BENCH_corpus_t1.json" \
    >"$t1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 4 --profile "$bench_dir/BENCH_corpus_t4.json" \
    >"$t4_log" 2>/dev/null
if ! diff -q "$t1_log" "$t4_log" >/dev/null; then
    echo "FAIL: corpus output differs between --threads 1 and --threads 4" >&2
    diff "$t1_log" "$t4_log" | head >&2
    exit 1
fi
echo "    byte-identical at --threads 1 and --threads 4 (120 loops)"

echo "==> profile snapshot determinism and benchdiff gates"
# Deterministic sections must be identical across thread counts; the wall
# section is expected to differ and is excluded.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_corpus_t1.json" "$bench_dir/BENCH_corpus_t4.json" \
    --strict-counters --no-wall
# A snapshot always passes a self-compare, wall section included.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_corpus_t4.json" "$bench_dir/BENCH_corpus_t4.json"
# The perf-regression gate: deterministic work must match the committed
# baseline exactly; wall time gets generous headroom (different machines).
# This strict-counter compare against the pre-press baseline is also the
# zero-cost-when-disabled proof for register-pressure support: with no
# --pressure-limit, the default path must reproduce every baseline
# counter bit-for-bit.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    BENCH_baseline.json "$bench_dir/BENCH_corpus_t4.json" \
    --strict-counters --wall-threshold 25
cargo run --release --offline -q -p ims-bench --bin profile_report -- \
    "$bench_dir/BENCH_corpus_t4.json" >/dev/null
echo "    deterministic sections thread-invariant; baseline gate and report OK"

echo "==> optgap determinism across thread counts (with --profile/--trace)"
og1_log=$(mktemp)
og4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 1 --profile "$bench_dir/BENCH_optgap_t1.json" \
    --trace "$bench_dir/trace_optgap_t1" >"$og1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 4 --profile "$bench_dir/BENCH_optgap_t4.json" \
    --trace "$bench_dir/trace_optgap_t4" >"$og4_log" 2>/dev/null
if ! diff -q "$og1_log" "$og4_log" >/dev/null; then
    echo "FAIL: optgap output differs between --threads 1 and --threads 4" >&2
    diff "$og1_log" "$og4_log" | head >&2
    exit 1
fi
if ! diff -r -q "$bench_dir/trace_optgap_t1" "$bench_dir/trace_optgap_t4" >/dev/null; then
    echo "FAIL: optgap --trace output differs between --threads 1 and --threads 4" >&2
    diff -r "$bench_dir/trace_optgap_t1" "$bench_dir/trace_optgap_t4" | head >&2
    exit 1
fi
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_optgap_t1.json" "$bench_dir/BENCH_optgap_t4.json" \
    --strict-counters --no-wall
echo "    byte-identical at --threads 1 and --threads 4 (240 loops, exact + 4 budgets)"

echo "==> optgap --backend sat: determinism and cross-prover agreement"
sat1_log=$(mktemp)
sat4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log" "$sat1_log" "$sat4_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 1 --backend sat \
    --profile "$bench_dir/BENCH_optgap_sat_t1.json" >"$sat1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 4 --backend sat \
    --profile "$bench_dir/BENCH_optgap_sat_t4.json" >"$sat4_log" 2>/dev/null
if ! diff -q "$sat1_log" "$sat4_log" >/dev/null; then
    echo "FAIL: optgap --backend sat differs between --threads 1 and --threads 4" >&2
    diff "$sat1_log" "$sat4_log" | head >&2
    exit 1
fi
# The SAT prover and the branch-and-bound prover must agree loop-for-loop
# on proved bounds (neither hits a limit at these sizes): compare the
# per-loop exact_lb/exact_ub fields against the exact run above.
if ! diff -q <(grep -o '"exact_lb":[0-9-]*,"exact_ub":[0-9-]*' "$og1_log") \
            <(grep -o '"exact_lb":[0-9-]*,"exact_ub":[0-9-]*' "$sat1_log") >/dev/null; then
    echo "FAIL: SAT and branch-and-bound provers disagree on proved bounds" >&2
    exit 1
fi
# sat.* counters (conflicts, propagations, learned clauses, ...) are
# deterministic work: strict across thread counts.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_optgap_sat_t1.json" "$bench_dir/BENCH_optgap_sat_t4.json" \
    --strict-counters --no-wall
echo "    byte-identical across thread counts; bounds agree with exact on all 240 loops"

echo "==> corpus --pressure-limit: determinism, fit coverage, press.* gates"
pl1_log=$(mktemp)
pl4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log" "$sat1_log" "$sat4_log" "$pl1_log" "$pl4_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 1 --pressure-limit 16 \
    --profile "$bench_dir/BENCH_press_t1.json" >"$pl1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 4 --pressure-limit 16 \
    --profile "$bench_dir/BENCH_press_t4.json" >"$pl4_log" 2>/dev/null
if ! diff -q "$pl1_log" "$pl4_log" >/dev/null; then
    echo "FAIL: pressure-limited corpus output differs between --threads 1 and --threads 4" >&2
    diff "$pl1_log" "$pl4_log" | head >&2
    exit 1
fi
# Aggregate sanity: the verdict fields must cover the whole corpus and
# at least some loops must fit a 16-register file.
press_fit=$(grep -o '"press_fit":[0-9]*' "$pl1_log" | grep -o '[0-9]*$')
press_inf=$(grep -o '"press_infeasible":[0-9]*' "$pl1_log" | grep -o '[0-9]*$')
if [ -z "$press_fit" ] || [ "$press_fit" -lt 1 ] || [ "$((press_fit + press_inf))" -ne 120 ]; then
    echo "FAIL: pressure verdicts wrong: fit=$press_fit infeasible=$press_inf over 120 loops" >&2
    exit 1
fi
# press.* counters (maxlive updates, rejects, II bumps) are deterministic
# work: strict across thread counts.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_press_t1.json" "$bench_dir/BENCH_press_t4.json" \
    --strict-counters --no-wall
echo "    byte-identical at --threads 1 and --threads 4 ($press_fit fit, $press_inf infeasible at 16 registers)"

echo "==> trace determinism across thread counts"
tr1_dir="$bench_dir/trace_corpus_t1"
tr4_dir="$bench_dir/trace_corpus_t4"
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 60 --threads 1 --trace "$tr1_dir" >/dev/null 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 60 --threads 4 --trace "$tr4_dir" >/dev/null 2>/dev/null
if ! diff -r -q "$tr1_dir" "$tr4_dir" >/dev/null; then
    echo "FAIL: --trace output differs between --threads 1 and --threads 4" >&2
    diff -r "$tr1_dir" "$tr4_dir" | head >&2
    exit 1
fi
n_traces=$(ls "$tr1_dir" | wc -l)
echo "    $n_traces per-loop traces byte-identical at --threads 1 and --threads 4"
cargo run --release --offline -q -p ims-bench --bin trace_report -- \
    "$tr1_dir" --top 3 >/dev/null
echo "    trace_report renders the trace directory"

echo "==> explain: II attribution determinism + exact-match accounting"
ex1_log=$(mktemp)
ex4_log=$(mktemp)
exr_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log" "$sat1_log" "$sat4_log" "$ex1_log" "$ex4_log" "$exr_log"' EXIT
ex_traces="$bench_dir/explain_traces"
# The driver itself asserts, per loop, that mined trace totals equal the
# scheduler's counters (exit 1 otherwise), so a clean run IS the
# accounting gate. --trace also writes every event stream for the replay
# leg below.
cargo run --release --offline -q -p ims-bench --bin explain -- \
    --threads 1 --trace "$ex_traces" \
    --profile "$bench_dir/BENCH_explain_t1.json" >"$ex1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin explain -- \
    --threads 4 \
    --profile "$bench_dir/BENCH_explain_t4.json" >"$ex4_log" 2>/dev/null
if ! diff -q "$ex1_log" "$ex4_log" >/dev/null; then
    echo "FAIL: explain output differs between --threads 1 and --threads 4" >&2
    diff "$ex1_log" "$ex4_log" | head >&2
    exit 1
fi
# Re-analyzing the written traces must reproduce the in-process bytes:
# the JSONL trace encoding is lossless and the analyzer is one code path.
cargo run --release --offline -q -p ims-bench --bin explain -- \
    --threads 4 --from-trace "$ex_traces" >"$exr_log" 2>/dev/null
if ! diff -q "$ex1_log" "$exr_log" >/dev/null; then
    echo "FAIL: --from-trace analysis differs from the in-process run" >&2
    diff "$ex1_log" "$exr_log" | head >&2
    exit 1
fi
# explain.* counters (bound tallies, gap loops, wasted steps) are
# deterministic work: strict across thread counts.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_explain_t1.json" "$bench_dir/BENCH_explain_t4.json" \
    --strict-counters --no-wall
# Leave the top-K digest under target/bench/ for CI upload.
cp "$ex1_log" "$bench_dir/explain_report.txt"
n_exp=$(grep -c '"loop":"' "$ex1_log")
echo "    $n_exp loops attributed; bytes identical across thread counts and via --from-trace replay"

echo "==> scheduled service: replay + cache determinism across thread counts"
reqs="$bench_dir/serve_requests.jsonl"
doubled="$bench_dir/serve_requests_x2.jsonl"
sv1_log=$(mktemp)
sv4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log" "$sat1_log" "$sat4_log" "$ex1_log" "$ex4_log" "$exr_log" "$sv1_log" "$sv4_log"' EXIT
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --gen-requests 40 --seed 7 >"$reqs"
cat "$reqs" "$reqs" >"$doubled"
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --threads 1 --requests "$doubled" \
    --profile "$bench_dir/BENCH_serve_t1.json" >"$sv1_log" 2>/dev/null
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --threads 4 --requests "$doubled" \
    --profile "$bench_dir/BENCH_serve_t4.json" >"$sv4_log" 2>/dev/null
if ! diff -q "$sv1_log" "$sv4_log" >/dev/null; then
    echo "FAIL: scheduled output differs between --threads 1 and --threads 4" >&2
    diff "$sv1_log" "$sv4_log" | head >&2
    exit 1
fi
# The file was replayed twice: the two response halves must be identical
# bytes (a warm cache is indistinguishable from a cold one)...
n_half=$(wc -l <"$reqs")
if ! diff -q <(head -n "$n_half" "$sv1_log") <(tail -n "$n_half" "$sv1_log") >/dev/null; then
    echo "FAIL: cold and warm response halves differ" >&2
    exit 1
fi
# ...and the second pass must be fully cache-served: at most one miss per
# distinct canonical problem, everything else a hit.
misses=$(grep -o '"serve\.cache\.misses": [0-9]*' "$bench_dir/BENCH_serve_t1.json" | grep -o '[0-9]*$')
hits=$(grep -o '"serve\.cache\.hits": [0-9]*' "$bench_dir/BENCH_serve_t1.json" | grep -o '[0-9]*$')
if [ "$misses" -gt "$n_half" ] || [ "$((hits + misses))" -ne "$((2 * n_half))" ]; then
    echo "FAIL: cache counters wrong: hits=$hits misses=$misses over $((2 * n_half)) requests" >&2
    exit 1
fi
# Hit/miss tallies are deterministic too: thread counts must agree.
cargo run --release --offline -q -p ims-bench --bin benchdiff -- \
    "$bench_dir/BENCH_serve_t1.json" "$bench_dir/BENCH_serve_t4.json" \
    --strict-counters --no-wall
echo "    $((2 * n_half)) responses byte-identical across thread counts; second pass fully cached ($hits hits, $misses misses)"

echo "==> scheduled service: portfolio(ims,exact) race determinism"
preqs="$bench_dir/serve_portfolio.jsonl"
pdoubled="$bench_dir/serve_portfolio_x2.jsonl"
pf1_log=$(mktemp)
pf4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log" "$sat1_log" "$sat4_log" "$ex1_log" "$ex4_log" "$exr_log" "$sv1_log" "$sv4_log" "$pf1_log" "$pf4_log"' EXIT
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --gen-requests 30 --seed 11 --backend "portfolio(ims,exact)" >"$preqs"
cat "$preqs" "$preqs" >"$pdoubled"
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --threads 1 --requests "$pdoubled" >"$pf1_log" 2>/dev/null
cargo run --release --offline -q -p ims-serve --bin scheduled -- \
    --threads 4 --requests "$pdoubled" >"$pf4_log" 2>/dev/null
# The race winner (lowest II, member order breaking ties) must be a pure
# function of the request: byte-identical responses at any thread count,
# and the cache-warm second half identical to the cold first half.
if ! diff -q "$pf1_log" "$pf4_log" >/dev/null; then
    echo "FAIL: portfolio responses differ between --threads 1 and --threads 4" >&2
    diff "$pf1_log" "$pf4_log" | head >&2
    exit 1
fi
pn_half=$(wc -l <"$preqs")
if ! diff -q <(head -n "$pn_half" "$pf1_log") <(tail -n "$pn_half" "$pf1_log") >/dev/null; then
    echo "FAIL: portfolio cold and warm response halves differ" >&2
    exit 1
fi
echo "    $((2 * pn_half)) portfolio responses byte-identical across thread counts, cache hot or cold"

echo "==> cargo doc --no-deps --offline (warnings are errors)"
cargo doc --no-deps --offline --workspace 2>&1 | tee "$doc_log"
if grep -q "^warning" "$doc_log"; then
    echo "FAIL: rustdoc emitted warnings" >&2
    exit 1
fi

echo "OK: build, tests, determinism, cross-prover agreement, profiling gates, pressure gates, II attribution, service cache, portfolio racing, and docs all clean offline"
