#!/usr/bin/env bash
# Canonical hermetic verification: build, test, and document the whole
# workspace with the network disabled. Run from the repository root.
#
# The workspace has no external dependencies — a bare Rust toolchain and an
# empty registry cache are enough for every step below to succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> corpus determinism across thread counts"
t1_log=$(mktemp)
t4_log=$(mktemp)
doc_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 1 >"$t1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 120 --threads 4 >"$t4_log" 2>/dev/null
if ! diff -q "$t1_log" "$t4_log" >/dev/null; then
    echo "FAIL: corpus output differs between --threads 1 and --threads 4" >&2
    diff "$t1_log" "$t4_log" | head >&2
    exit 1
fi
echo "    byte-identical at --threads 1 and --threads 4 (120 loops)"

echo "==> optgap determinism across thread counts"
og1_log=$(mktemp)
og4_log=$(mktemp)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log"' EXIT
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 1 >"$og1_log" 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin optgap -- \
    --loops 240 --threads 4 >"$og4_log" 2>/dev/null
if ! diff -q "$og1_log" "$og4_log" >/dev/null; then
    echo "FAIL: optgap output differs between --threads 1 and --threads 4" >&2
    diff "$og1_log" "$og4_log" | head >&2
    exit 1
fi
echo "    byte-identical at --threads 1 and --threads 4 (240 loops, exact + 4 budgets)"

echo "==> trace determinism across thread counts"
tr1_dir=$(mktemp -d)
tr4_dir=$(mktemp -d)
trap 'rm -f "$t1_log" "$t4_log" "$doc_log" "$og1_log" "$og4_log"; rm -rf "$tr1_dir" "$tr4_dir"' EXIT
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 60 --threads 1 --trace "$tr1_dir" >/dev/null 2>/dev/null
cargo run --release --offline -q -p ims-bench --bin corpus -- \
    --loops 60 --threads 4 --trace "$tr4_dir" >/dev/null 2>/dev/null
if ! diff -r -q "$tr1_dir" "$tr4_dir" >/dev/null; then
    echo "FAIL: --trace output differs between --threads 1 and --threads 4" >&2
    diff -r "$tr1_dir" "$tr4_dir" | head >&2
    exit 1
fi
n_traces=$(ls "$tr1_dir" | wc -l)
echo "    $n_traces per-loop traces byte-identical at --threads 1 and --threads 4"
cargo run --release --offline -q -p ims-bench --bin trace_report -- \
    "$tr1_dir" --top 3 >/dev/null
echo "    trace_report renders the trace directory"

echo "==> cargo doc --no-deps --offline (warnings are errors)"
cargo doc --no-deps --offline --workspace 2>&1 | tee "$doc_log"
if grep -q "^warning" "$doc_log"; then
    echo "FAIL: rustdoc emitted warnings" >&2
    exit 1
fi

echo "OK: build, tests, and docs all clean offline"
