#!/usr/bin/env bash
# Canonical hermetic verification: build, test, and document the whole
# workspace with the network disabled. Run from the repository root.
#
# The workspace has no external dependencies — a bare Rust toolchain and an
# empty registry cache are enough for every step below to succeed.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --offline"
cargo build --release --offline --workspace

echo "==> cargo test -q --offline"
cargo test -q --offline --workspace

echo "==> cargo doc --no-deps --offline (warnings are errors)"
doc_log=$(mktemp)
trap 'rm -f "$doc_log"' EXIT
cargo doc --no-deps --offline --workspace 2>&1 | tee "$doc_log"
if grep -q "^warning" "$doc_log"; then
    echo "FAIL: rustdoc emitted warnings" >&2
    exit 1
fi

echo "OK: build, tests, and docs all clean offline"
