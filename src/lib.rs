#![warn(missing_docs)]

//! # ims — Iterative Modulo Scheduling
//!
//! A from-scratch Rust implementation of B. Ramakrishna Rau's *"Iterative
//! Modulo Scheduling: An Algorithm For Software Pipelining Loops"*
//! (MICRO-27, 1994), together with every substrate the paper depends on:
//!
//! * a loop intermediate representation ([`ir`]),
//! * a machine model with reservation tables ([`machine`]),
//! * dependence-graph algorithms — SCCs, circuits, MinDist ([`graph`]),
//! * dependence analysis from IR to a schedulable graph ([`deps`]),
//! * the iterative modulo scheduler itself, with MII bounds ([`core`]),
//! * post-scheduling code generation — modulo variable expansion, kernel
//!   unrolling, prologue/epilogue ([`codegen`]),
//! * a NUAL VLIW simulator for end-to-end validation ([`vliw`]),
//! * a benchmark-loop corpus generator ([`loopgen`]),
//! * the statistics toolkit used by the evaluation harness ([`stats`]), and
//! * the corpus measurement harness with its parallel scheduling driver
//!   ([`mod@bench`]).
//!
//! This facade crate re-exports all of them under one roof. Downstream users
//! can either depend on `ims` or on the individual `ims-*` crates.
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use ims_bench as bench;
pub use ims_codegen as codegen;
pub use ims_core as core;
pub use ims_deps as deps;
pub use ims_graph as graph;
pub use ims_ir as ir;
pub use ims_loopgen as loopgen;
pub use ims_machine as machine;
pub use ims_stats as stats;
pub use ims_vliw as vliw;
