#![warn(missing_docs)]

//! # ims — Iterative Modulo Scheduling
//!
//! A from-scratch Rust implementation of B. Ramakrishna Rau's *"Iterative
//! Modulo Scheduling: An Algorithm For Software Pipelining Loops"*
//! (MICRO-27, 1994), together with every substrate the paper depends on:
//!
//! * a loop intermediate representation ([`ir`]),
//! * a machine model with reservation tables ([`machine`]),
//! * dependence-graph algorithms — SCCs, circuits, MinDist ([`graph`]),
//! * dependence analysis from IR to a schedulable graph ([`deps`]),
//! * the iterative modulo scheduler itself, with MII bounds ([`core`]),
//! * an exact branch-and-bound modulo scheduler that proves II optimality
//!   or reports explicit bounds under a budget ([`exact`]),
//! * a second exact backend: a std-only CDCL SAT solver plus a CNF
//!   encoding of "is there a schedule at this II?" ([`sat`]), racing the
//!   others through the backend registry and `portfolio(...)` specs,
//! * register-pressure-aware scheduling — an incremental MaxLive tracker
//!   and an observer that holds schedules under a register-file capacity
//!   ([`press`]),
//! * post-scheduling code generation — modulo variable expansion, kernel
//!   unrolling, prologue/epilogue ([`codegen`]),
//! * a NUAL VLIW simulator for end-to-end validation ([`vliw`]),
//! * a benchmark-loop corpus generator ([`loopgen`]),
//! * the statistics toolkit used by the evaluation harness ([`stats`]),
//! * the pipeline-wide phase profiler — metrics registry, wall-clock
//!   spans, `BENCH_*.json` snapshots and their diff engine ([`prof`]),
//! * event-level scheduler observability — JSON-lines traces, replay,
//!   convergence reports ([`mod@trace`]),
//! * II-attribution and trace-mining diagnostics — *which* resource or
//!   circuit pins the MII, where evicted ops and wasted budget concentrate
//!   ([`explain`]),
//! * the corpus measurement harness with its parallel scheduling driver
//!   ([`mod@bench`]), and
//! * a scheduler-as-a-service daemon — JSONL wire format, deterministic
//!   worker pool, content-addressed schedule cache over the graph
//!   canonicalization pass ([`serve`]).
//!
//! This facade crate re-exports all of them under one roof. Downstream users
//! can either depend on `ims` or on the individual `ims-*` crates; the
//! [`prelude`] pulls in everything a typical scheduling session needs:
//!
//! ```
//! use ims::prelude::*;
//!
//! let machine = ims::machine::minimal();
//! let mut pb = ProblemBuilder::new(&machine);
//! let _ = pb.add_op(ims::ir::Opcode::Add, ims::ir::OpId(0));
//! let problem = pb.finish();
//!
//! let mut tracer = TraceWriter::in_memory();
//! let out = Scheduler::new(&problem)
//!     .config(SchedConfig::new().budget_ratio(4.0))
//!     .observer(&mut tracer)
//!     .run()
//!     .expect("schedules");
//! assert_eq!(out.schedule.ii, 1);
//! ```
//!
//! See `README.md` for a quickstart, `DESIGN.md` for the system inventory and
//! per-experiment index, and `EXPERIMENTS.md` for paper-vs-measured results.

pub use ims_bench as bench;
pub use ims_codegen as codegen;
pub use ims_core as core;
pub use ims_deps as deps;
pub use ims_exact as exact;
pub use ims_explain as explain;
pub use ims_graph as graph;
pub use ims_ir as ir;
pub use ims_loopgen as loopgen;
pub use ims_machine as machine;
pub use ims_press as press;
pub use ims_prof as prof;
pub use ims_sat as sat;
pub use ims_serve as serve;
pub use ims_stats as stats;
pub use ims_trace as trace;
pub use ims_vliw as vliw;

/// One-stop imports for driving the scheduler and observing it.
///
/// Re-exports the builder-style entry point ([`Scheduler`](ims_core::Scheduler)), its
/// configuration and error types, the observer trait, and the concrete
/// observers/trace utilities from [`mod@trace`].
pub mod prelude {
    pub use ims_core::{
        modulo_schedule, BackendKind, BackendParams, BackendRegistry, BackendSpec, IiBounds,
        IterativeBackend, NullObserver, ProblemBuilder, SchedConfig, SchedObserver, SchedOutcome,
        ScheduleError, Scheduler, SchedulerBackend,
    };
    pub use ims_exact::{schedule_exact, ExactBackend, ExactConfig, ExactOutcome};
    pub use ims_sat::{default_registry, schedule_sat, SatBackend, SatConfig, SatOutcome};
    pub use ims_trace::{
        parse_trace, replay, MetricsObserver, Recorder, SchedEvent, TraceSummary, TraceWriter,
    };
}
