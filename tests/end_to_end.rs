//! End-to-end integration: every hand-written benchmark kernel is
//! scheduled, validated, executed in all four modes, and the executions
//! must agree — on both Cydra machine variants, with and without
//! recurrence back-substitution.

use ims::codegen::{generate_mve, generate_rotating, lifetimes};
use ims::core::{modulo_schedule, validate_schedule, SchedConfig};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::ir::LoopBody;
use ims::loopgen::kernels;
use ims::machine::{cydra, cydra_simple, figure1_machine, MachineModel};
use ims::vliw::{
    compare_memory, compare_results, run_mve, run_overlapped, run_rotating, run_sequential,
    MemoryImage,
};

fn image_for(kernel: &ims::loopgen::Kernel, body: &LoopBody) -> MemoryImage {
    let mut img = MemoryImage::for_body(body);
    for (array, data) in &kernel.init {
        for (i, v) in data.iter().enumerate() {
            img.set(*array, i, *v);
        }
    }
    img
}

/// Full pipeline on one kernel/machine pair.
fn check_kernel(kernel: &ims::loopgen::Kernel, machine: &MachineModel, backsub: bool) {
    let body = if backsub {
        back_substitute(&kernel.body, machine)
    } else {
        kernel.body.clone()
    };
    let problem = build_problem(&body, machine, &BuildOptions::default());
    let out = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0))
        .unwrap_or_else(|e| panic!("{} fails to schedule: {e}", kernel.name));
    validate_schedule(&problem, &out.schedule)
        .unwrap_or_else(|v| panic!("{} produced an illegal schedule: {v}", kernel.name));
    assert!(out.schedule.ii >= out.mii.mii);

    let image = image_for(kernel, &body);
    let seq = run_sequential(&body, image.clone())
        .unwrap_or_else(|e| panic!("{} reference run failed: {e}", kernel.name));
    let pipe = run_overlapped(&body, &problem, &out.schedule, image.clone())
        .unwrap_or_else(|e| panic!("{} overlapped run failed: {e}", kernel.name));
    if let Some(m) = compare_results(&seq, &pipe) {
        panic!("{}: overlapped != sequential: {m:?}", kernel.name);
    }

    // Code generation + execution (memory compared).
    let lt = lifetimes(&body, &problem, &out.schedule);
    let mve = generate_mve(&body, &problem, &out.schedule, &lt);
    let mve_run = run_mve(&mve, &body, machine, image.clone())
        .unwrap_or_else(|e| panic!("{} MVE run failed: {e}", kernel.name));
    if let Some(m) = compare_memory(&seq.memory, &mve_run.memory) {
        panic!("{}: MVE != sequential: {m:?}", kernel.name);
    }

    match generate_rotating(&body, &problem, &out.schedule, &lt) {
        Ok(rot) => {
            let rot_run = run_rotating(&rot, &body, machine, image)
                .unwrap_or_else(|e| panic!("{} rotating run failed: {e}", kernel.name));
            if let Some(m) = compare_memory(&seq.memory, &rot_run.memory) {
                panic!("{}: rotating != sequential: {m:?}", kernel.name);
            }
        }
        Err(e) => {
            // Seed conflicts are a documented fallback-to-MVE case.
            eprintln!("{}: rotating codegen declined: {e}", kernel.name);
        }
    }
}

#[test]
fn all_kernels_on_cydra() {
    for k in kernels(24) {
        check_kernel(&k, &cydra(), false);
    }
}

#[test]
fn all_kernels_on_cydra_with_back_substitution() {
    for k in kernels(24) {
        check_kernel(&k, &cydra(), true);
    }
}

#[test]
fn all_kernels_on_cydra_simple() {
    for k in kernels(24) {
        check_kernel(&k, &cydra_simple(), true);
    }
}

#[test]
fn all_kernels_on_the_shared_bus_machine() {
    // The literal Figure 1 machine is the hardest to pack; everything must
    // still schedule and execute correctly (if at larger IIs).
    for k in kernels(16) {
        check_kernel(&k, &figure1_machine(), true);
    }
}

#[test]
fn odd_trip_counts_cover_epilogue_edge_cases() {
    // Trip counts that do not divide evenly by the unroll factor exercise
    // the MVE coda path.
    for n in [5, 7, 11, 13, 17, 23] {
        for k in kernels(n) {
            check_kernel(&k, &cydra(), true);
        }
    }
}

#[test]
fn pressure_limited_schedules_fit_their_register_file() {
    // Tentpole e2e: on the small-register-file Cydra variants, a
    // pressure-limited schedule must hold MaxLive under the declared
    // capacity, its rotating allocation must fit the file, and the
    // pipelined/rotating executions must still match sequential
    // semantics. Kernels genuinely infeasible at the capacity must fail
    // with the structured error, never an over-budget schedule.
    use ims::codegen::allocate_rotating;
    use ims::core::{ScheduleError, Scheduler};
    use ims::machine::cydra_rf;
    use ims::press::PressureObserver;

    let mut fitted = 0usize;
    let mut infeasible = 0usize;
    for limit in [10u32, 14, 20] {
        let machine = cydra_rf(limit);
        assert_eq!(machine.register_file(), Some(limit));
        for k in kernels(24) {
            let body = back_substitute(&k.body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let mut obs = PressureObserver::for_body(&body, &problem, limit);
            let result = Scheduler::new(&problem)
                .config(SchedConfig::new().budget_ratio(6.0).pressure_limit(limit))
                .observer(&mut obs)
                .run();
            match result {
                Ok(out) => {
                    fitted += 1;
                    validate_schedule(&problem, &out.schedule).unwrap_or_else(|v| {
                        panic!("{} rf{limit}: illegal pressure-limited schedule: {v}", k.name)
                    });
                    assert!(
                        obs.max_live() <= limit,
                        "{} rf{limit}: MaxLive {} over the accepted limit",
                        k.name,
                        obs.max_live()
                    );
                    let lt = lifetimes(&body, &problem, &out.schedule);
                    let alloc = allocate_rotating(&body, &lt, out.schedule.ii);
                    assert!(
                        alloc.size as u32 <= limit,
                        "{} rf{limit}: rotating allocation needs {} registers",
                        k.name,
                        alloc.size
                    );
                    let image = image_for(&k, &body);
                    let seq = run_sequential(&body, image.clone())
                        .unwrap_or_else(|e| panic!("{} reference run failed: {e}", k.name));
                    let pipe = run_overlapped(&body, &problem, &out.schedule, image.clone())
                        .unwrap_or_else(|e| panic!("{} overlapped run failed: {e}", k.name));
                    if let Some(m) = compare_results(&seq, &pipe) {
                        panic!("{} rf{limit}: overlapped != sequential: {m:?}", k.name);
                    }
                    match generate_rotating(&body, &problem, &out.schedule, &lt) {
                        Ok(rot) => {
                            let rot_run = run_rotating(&rot, &body, &machine, image)
                                .unwrap_or_else(|e| {
                                    panic!("{} rotating run failed: {e}", k.name)
                                });
                            if let Some(m) = compare_memory(&seq.memory, &rot_run.memory) {
                                panic!("{} rf{limit}: rotating != sequential: {m:?}", k.name);
                            }
                        }
                        Err(e) => eprintln!("{} rf{limit}: rotating codegen declined: {e}", k.name),
                    }
                }
                Err(ScheduleError::PressureInfeasible { limit: l, .. }) => {
                    infeasible += 1;
                    assert_eq!(l, limit);
                }
                Err(e) => panic!("{} rf{limit}: unexpected error: {e}", k.name),
            }
        }
    }
    assert!(fitted > 0, "no kernel fit any register file");
    eprintln!("pressure e2e: {fitted} fitted, {infeasible} infeasible");
}

#[test]
fn exact_schedules_execute_correctly() {
    // Schedules from the exact branch-and-bound backend flow through the
    // same validator and VLIW simulator as iterative ones; the pipelined
    // execution must match sequential semantics on every kernel.
    use ims::exact::{schedule_exact, ExactConfig};
    let machine = cydra();
    let config = ExactConfig::new().node_limit(Some(200_000));
    for k in kernels(16) {
        let body = back_substitute(&k.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = schedule_exact(&problem, &config)
            .unwrap_or_else(|e| panic!("{} fails to schedule exactly: {e}", k.name));
        validate_schedule(&problem, &out.schedule)
            .unwrap_or_else(|v| panic!("{} produced an illegal exact schedule: {v}", k.name));
        assert!(out.schedule.ii >= out.mii.mii);
        assert!(out.schedule.ii <= out.ims_ii, "exact beats or matches the heuristic");
        assert!(out.bounds.proved_lb <= out.bounds.best_ub);

        let image = image_for(&k, &body);
        let seq = run_sequential(&body, image.clone())
            .unwrap_or_else(|e| panic!("{} reference run failed: {e}", k.name));
        let pipe = run_overlapped(&body, &problem, &out.schedule, image)
            .unwrap_or_else(|e| panic!("{} overlapped run failed: {e}", k.name));
        if let Some(m) = compare_results(&seq, &pipe) {
            panic!("{}: exact-scheduled overlapped != sequential: {m:?}", k.name);
        }
    }
}

#[test]
fn pipelining_actually_overlaps_iterations() {
    // For at least the vectorizable kernels the pipelined execution must be
    // far faster than sequential issue (that is the whole point).
    let machine = cydra();
    let mut improved = 0;
    let mut total = 0;
    for k in kernels(48) {
        let body = back_substitute(&k.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0)).unwrap();
        let image = image_for(&k, &body);
        let pipe = run_overlapped(&body, &problem, &out.schedule, image).unwrap();
        let serialized = 48 * out.schedule.length as u64;
        total += 1;
        if pipe.cycles * 2 < serialized {
            improved += 1;
        }
    }
    assert!(
        improved * 10 >= total * 7,
        "only {improved}/{total} kernels got a 2x pipeline speedup"
    );
}

#[test]
fn unrolled_loops_compute_the_same_results() {
    // The unroll transform must preserve semantics: running the unrolled
    // body for n/U iterations equals running the original for n.
    use ims::deps::unroll;
    let machine = cydra();
    for k in kernels(24) {
        for u in [2u32, 4] {
            // Skip kernels whose trip count does not divide evenly.
            if 24 % u != 0 {
                continue;
            }
            let unrolled = unroll(&k.body, u);
            let orig_img = image_for(&k, &k.body);
            let unrolled_img = image_for(&k, &unrolled);
            let a = run_sequential(&k.body, orig_img)
                .unwrap_or_else(|e| panic!("{} original failed: {e}", k.name));
            let b = run_sequential(&unrolled, unrolled_img)
                .unwrap_or_else(|e| panic!("{} x{u} failed: {e}", k.name));
            if let Some(m) = compare_memory(&a.memory, &b.memory) {
                panic!("{} x{u}: unrolled != original: {m:?}", k.name);
            }
            // And the unrolled body is itself modulo-schedulable.
            let p = build_problem(&unrolled, &machine, &BuildOptions::default());
            let out = modulo_schedule(&p, &SchedConfig::with_budget_ratio(6.0))
                .unwrap_or_else(|e| panic!("{} x{u} does not schedule: {e}", k.name));
            validate_schedule(&p, &out.schedule)
                .unwrap_or_else(|v| panic!("{} x{u} illegal schedule: {v}", k.name));
        }
    }
}
