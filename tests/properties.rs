//! Property-based tests over randomly generated loops, on the in-repo
//! [`ims_testkit::prop`] harness.
//!
//! Every generated loop must: schedule at some II ≥ MII; produce a schedule
//! that passes the independent validator; have HeightR consistent with
//! MinDist; and have RecMII agree between the MinDist method and circuit
//! enumeration.

use ims::core::{
    height_r, modulo_schedule, rec_mii, rec_mii_by_circuits, validate_schedule, Counters,
    SchedConfig,
};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::graph::compute_min_dist;
use ims::loopgen::{generate_loop, SynthConfig};
use ims::machine::{cydra, cydra_simple, wide};
use ims_testkit::{check, prop_assert, prop_assert_eq, Gen, PropConfig, Xoshiro256};

/// A synthetic-loop configuration plus a generator seed.
fn gen_loop(g: &mut Gen) -> (u64, SynthConfig) {
    let seed = g.u64();
    let cfg = SynthConfig {
        ops_target: g.usize_in(4, 60),
        recurrences: g.vec_with(2, |g| g.usize_in(2, 6)),
        with_branch: g.bool(),
    };
    (seed, cfg)
}

#[test]
fn every_generated_loop_schedules_and_validates() {
    check(
        "every_generated_loop_schedules_and_validates",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let body = back_substitute(&body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedules");
            prop_assert!(out.schedule.ii >= out.mii.mii);
            prop_assert!(validate_schedule(&problem, &out.schedule).is_ok());
            // Every operation issues within the schedule length.
            for node in problem.op_nodes() {
                prop_assert!(out.schedule.time_of(node) <= out.schedule.length);
            }
            Ok(())
        },
    );
}

#[test]
fn height_r_equals_min_dist_to_stop() {
    check(
        "height_r_equals_min_dist_to_stop",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra_simple();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let mut c = Counters::new();
            let ii = rec_mii(&problem, 1, &mut c).max(1);
            let heights = height_r(&problem, ii, &mut c);
            let nodes: Vec<_> = problem.graph().nodes().collect();
            let mut w = 0u64;
            let md = compute_min_dist(problem.graph(), &nodes, ii, &mut w);
            for node in problem.graph().nodes() {
                if node == problem.stop() {
                    continue;
                }
                prop_assert_eq!(heights[node.index()], md.get(node, problem.stop()));
            }
            Ok(())
        },
    );
}

#[test]
fn rec_mii_methods_agree() {
    check(
        "rec_mii_methods_agree",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let by_mindist = rec_mii(&problem, 1, &mut Counters::new());
            if let Some(by_circuits) = rec_mii_by_circuits(&problem, 100_000) {
                prop_assert_eq!(by_mindist, by_circuits);
            }
            Ok(())
        },
    );
}

#[test]
fn larger_budget_never_worsens_ii() {
    check(
        "larger_budget_never_worsens_ii",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let tight =
                modulo_schedule(&problem, &SchedConfig::with_budget_ratio(1.0)).expect("schedules");
            let loose =
                modulo_schedule(&problem, &SchedConfig::with_budget_ratio(8.0)).expect("schedules");
            prop_assert!(loose.schedule.ii <= tight.schedule.ii);
            Ok(())
        },
    );
}

#[test]
fn wider_machines_never_raise_the_mii() {
    check(
        "wider_machines_never_raise_the_mii",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let narrow = wide(2);
            let wide_m = wide(6);
            let p_narrow = build_problem(&body, &narrow, &BuildOptions::default());
            let p_wide = build_problem(&body, &wide_m, &BuildOptions::default());
            let mii_narrow = ims::core::compute_mii(&p_narrow, &mut Counters::new());
            let mii_wide = ims::core::compute_mii(&p_wide, &mut Counters::new());
            prop_assert!(mii_wide.mii <= mii_narrow.mii);
            prop_assert!(mii_wide.res_mii <= mii_narrow.res_mii);
            Ok(())
        },
    );
}

#[test]
fn trace_replay_reconstructs_the_schedule() {
    use ims::prelude::*;

    check(
        "trace_replay_reconstructs_the_schedule",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let mut tracer = TraceWriter::in_memory();
            let out = Scheduler::new(&problem)
                .observer(&mut tracer)
                .run()
                .expect("schedules");
            let text = tracer.into_string();
            let events = parse_trace(&text).expect("every emitted line parses");
            // The trace is a faithful record: replaying the placement and
            // eviction events alone reconstructs the final schedule.
            let times = replay(&events).final_times().expect("complete schedule");
            prop_assert_eq!(&times, &out.schedule.time);
            // And the summary agrees with the scheduler's own accounting.
            let summary = TraceSummary::from_events(&events);
            prop_assert_eq!(summary.final_ii(), Some(out.schedule.ii));
            prop_assert_eq!(summary.total_steps(), out.stats.total_steps());
            prop_assert_eq!(summary.evictions, out.stats.counters.evictions);
            Ok(())
        },
    );
}

#[test]
fn null_observer_is_invisible() {
    use ims::prelude::*;

    check(
        "null_observer_is_invisible",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let legacy = modulo_schedule(&problem, &SchedConfig::default()).expect("schedules");
            let built = Scheduler::new(&problem)
                .observer(&mut NullObserver)
                .run()
                .expect("schedules");
            // The builder with the no-op observer is the legacy entry
            // point: same schedule, same instrumentation counters.
            prop_assert_eq!(&built.schedule.time, &legacy.schedule.time);
            prop_assert_eq!(built.schedule.ii, legacy.schedule.ii);
            prop_assert_eq!(built.stats.total_steps(), legacy.stats.total_steps());
            prop_assert_eq!(
                built.stats.counters.findslot_iters,
                legacy.stats.counters.findslot_iters
            );
            prop_assert_eq!(built.stats.counters.evictions, legacy.stats.counters.evictions);
            Ok(())
        },
    );
}

#[test]
fn exact_backend_brackets_the_heuristic() {
    use ims::exact::{schedule_exact, ExactConfig};

    check(
        "exact_backend_brackets_the_heuristic",
        &PropConfig::with_cases(48),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let body = back_substitute(&body, &machine);
            let problem = build_problem(&body, &machine, &BuildOptions::default());
            let ims =
                modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0)).expect("schedules");
            let exact = schedule_exact(&problem, &ExactConfig::new().node_limit(Some(500_000)))
                .expect("the exact backend degrades, never fails");
            // The exact schedule is legal and never worse than the
            // heuristic's; both sit at or above the MII.
            prop_assert!(validate_schedule(&problem, &exact.schedule).is_ok());
            prop_assert!(exact.schedule.ii <= ims.schedule.ii);
            prop_assert!(exact.schedule.ii >= exact.mii.mii);
            prop_assert_eq!(exact.ims_ii, ims.schedule.ii);
            // Bounds are a sane interval around the true minimum.
            prop_assert!(exact.bounds.proved_lb >= exact.mii.mii);
            prop_assert!(exact.bounds.proved_lb <= exact.bounds.best_ub);
            prop_assert_eq!(exact.bounds.best_ub, exact.schedule.ii);
            // A search that ran to completion pins the optimum exactly.
            prop_assert_eq!(!exact.limit_hit, exact.bounds.is_exact());
            Ok(())
        },
    );
}

#[test]
fn back_substitution_never_raises_the_mii() {
    check(
        "back_substitution_never_raises_the_mii",
        &PropConfig::with_cases(64),
        &[],
        gen_loop,
        |(seed, cfg)| {
            let body = generate_loop(&mut Xoshiro256::seed_from_u64(*seed), cfg);
            let machine = cydra();
            let raw = build_problem(&body, &machine, &BuildOptions::default());
            let bs_body = back_substitute(&body, &machine);
            let bs = build_problem(&bs_body, &machine, &BuildOptions::default());
            let raw_mii = ims::core::compute_mii(&raw, &mut Counters::new());
            let bs_mii = ims::core::compute_mii(&bs, &mut Counters::new());
            prop_assert!(bs_mii.mii <= raw_mii.mii, "{} > {}", bs_mii.mii, raw_mii.mii);
            Ok(())
        },
    );
}
