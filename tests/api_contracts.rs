//! API-contract checks: the public types behave the way a downstream user
//! expects (thread-safety, trait implementations, determinism).

use ims::core::{Counters, MiiInfo, SchedConfig, SchedOutcome, Schedule};
use ims::graph::{DepGraph, MinDist};
use ims::ir::{LoopBody, Value};
use ims::machine::MachineModel;
use ims::vliw::MemoryImage;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn key_types_are_send_and_sync() {
    assert_send_sync::<LoopBody>();
    assert_send_sync::<MachineModel>();
    assert_send_sync::<DepGraph>();
    assert_send_sync::<MinDist>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<SchedOutcome>();
    assert_send_sync::<SchedConfig>();
    assert_send_sync::<MiiInfo>();
    assert_send_sync::<Counters>();
    assert_send_sync::<MemoryImage>();
    assert_send_sync::<Value>();
}

#[test]
fn corpus_runs_are_parallelizable() {
    // The whole measurement pipeline is shared-state-free: running loops
    // from several threads must give the same results as serially.
    use ims::deps::{build_problem, BuildOptions};
    use ims::loopgen::corpus_of_size;
    use ims::machine::cydra;
    use ims::core::modulo_schedule;

    let corpus = corpus_of_size(3, 24);
    let machine = cydra();
    let serial: Vec<i64> = corpus
        .loops
        .iter()
        .map(|l| {
            let p = build_problem(&l.body, &machine, &BuildOptions::default());
            modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
        })
        .collect();

    let parallel: Vec<i64> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .loops
            .iter()
            .map(|l| {
                let machine = &machine;
                scope.spawn(move || {
                    let p = build_problem(&l.body, machine, &BuildOptions::default());
                    modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}
