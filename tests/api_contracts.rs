//! API-contract checks: the public types behave the way a downstream user
//! expects (thread-safety, trait implementations, determinism).

use ims::core::{
    Counters, MiiInfo, NullObserver, SchedConfig, SchedOutcome, Schedule, ScheduleError,
};
use ims::graph::{DepGraph, MinDist};
use ims::ir::{LoopBody, Value};
use ims::machine::MachineModel;
use ims::trace::{MetricsObserver, Recorder, SchedEvent, TraceSummary};
use ims::vliw::MemoryImage;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn key_types_are_send_and_sync() {
    assert_send_sync::<LoopBody>();
    assert_send_sync::<MachineModel>();
    assert_send_sync::<DepGraph>();
    assert_send_sync::<MinDist>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<SchedOutcome>();
    assert_send_sync::<SchedConfig>();
    assert_send_sync::<ScheduleError>();
    assert_send_sync::<NullObserver>();
    assert_send_sync::<MiiInfo>();
    assert_send_sync::<Counters>();
    assert_send_sync::<MemoryImage>();
    assert_send_sync::<Value>();
    assert_send_sync::<SchedEvent>();
    assert_send_sync::<Recorder>();
    assert_send_sync::<MetricsObserver>();
    assert_send_sync::<TraceSummary>();
}

/// A two-op loop whose recurrence forces II >= 5.
fn recurrence_problem(machine: &MachineModel) -> ims::core::Problem<'_> {
    use ims::graph::DepKind;
    use ims::ir::{OpId, Opcode};

    let mut pb = ims::core::ProblemBuilder::new(machine);
    let a = pb.add_op(Opcode::Add, OpId(0));
    let b = pb.add_op(Opcode::Add, OpId(1));
    pb.add_dep(a, b, 4, 0, DepKind::Flow, false);
    pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // RecMII = ceil(5/1) = 5
    pb.finish()
}

#[test]
fn ii_cap_surfaces_a_structured_error() {
    // An II cap below the MII means no attempt is even possible; the
    // failure must surface as the structured `IiCapExceeded` error (with
    // the cap and the MII), not a panic — even with a generous budget.
    use ims::core::Scheduler;
    use ims::machine::minimal;

    let machine = minimal();
    let problem = recurrence_problem(&machine);

    let err = Scheduler::new(&problem)
        .max_ii(2)
        .budget_ratio(100.0)
        .run()
        .expect_err("II capped below the recurrence bound cannot schedule");
    match err {
        ScheduleError::IiCapExceeded { mii, max_ii } => {
            assert_eq!(max_ii, 2);
            assert_eq!(mii, 5);
        }
        other => panic!("expected IiCapExceeded, got {other:?}"),
    }
    assert!(!err.to_string().is_empty(), "error implements Display");
}

#[test]
fn budget_exhaustion_reports_attempts_and_spend() {
    // A cap at the MII with a starvation budget lets attempts run but
    // fail; that is the other error variant, and it reports how much
    // budget the run burned.
    use ims::core::Scheduler;
    use ims::machine::minimal;

    let machine = minimal();
    let problem = recurrence_problem(&machine);

    let err = Scheduler::new(&problem)
        .config(SchedConfig::new().max_ii(5).budget_ratio(0.0))
        .run()
        .expect_err("a zero budget cannot schedule anything");
    match err {
        ScheduleError::BudgetExhausted { last_ii, spent } => {
            assert_eq!(last_ii, 5);
            assert!(spent <= 2, "budget floor allows at most a step per op");
        }
        other => panic!("expected BudgetExhausted, got {other:?}"),
    }
}

#[test]
fn builder_and_legacy_entry_point_agree() {
    // `modulo_schedule` is documented as a thin wrapper over the builder;
    // the two must produce identical schedules, and a `Recorder` observer
    // must see events consistent with the returned outcome.
    use ims::core::{modulo_schedule, Scheduler};
    use ims::deps::{build_problem, BuildOptions};
    use ims::loopgen::corpus_of_size;
    use ims::machine::cydra;

    let corpus = corpus_of_size(21, 8);
    let machine = cydra();
    for l in &corpus.loops {
        let p = build_problem(&l.body, &machine, &BuildOptions::default());
        let legacy = modulo_schedule(&p, &SchedConfig::default()).unwrap();

        let mut rec = Recorder::default();
        let built = Scheduler::new(&p).observer(&mut rec).run().unwrap();
        assert_eq!(built.schedule.ii, legacy.schedule.ii);
        assert_eq!(built.schedule.time, legacy.schedule.time);

        let summary = TraceSummary::from_events(&rec.events);
        assert_eq!(summary.final_ii(), Some(built.schedule.ii));
        assert_eq!(summary.total_steps(), built.stats.total_steps());
    }
}

#[test]
fn corpus_runs_are_parallelizable() {
    // The whole measurement pipeline is shared-state-free: running loops
    // from several threads must give the same results as serially.
    use ims::deps::{build_problem, BuildOptions};
    use ims::loopgen::corpus_of_size;
    use ims::machine::cydra;
    use ims::core::modulo_schedule;

    let corpus = corpus_of_size(3, 24);
    let machine = cydra();
    let serial: Vec<i64> = corpus
        .loops
        .iter()
        .map(|l| {
            let p = build_problem(&l.body, &machine, &BuildOptions::default());
            modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
        })
        .collect();

    let parallel: Vec<i64> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .loops
            .iter()
            .map(|l| {
                let machine = &machine;
                scope.spawn(move || {
                    let p = build_problem(&l.body, machine, &BuildOptions::default());
                    modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}
