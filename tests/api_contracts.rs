//! API-contract checks: the public types behave the way a downstream user
//! expects (thread-safety, trait implementations, determinism).

use ims::core::{Counters, MiiInfo, SchedConfig, SchedOutcome, Schedule};
use ims::graph::{DepGraph, MinDist};
use ims::ir::{LoopBody, Value};
use ims::machine::MachineModel;
use ims::vliw::MemoryImage;

fn assert_send_sync<T: Send + Sync>() {}

#[test]
fn key_types_are_send_and_sync() {
    assert_send_sync::<LoopBody>();
    assert_send_sync::<MachineModel>();
    assert_send_sync::<DepGraph>();
    assert_send_sync::<MinDist>();
    assert_send_sync::<Schedule>();
    assert_send_sync::<SchedOutcome>();
    assert_send_sync::<SchedConfig>();
    assert_send_sync::<MiiInfo>();
    assert_send_sync::<Counters>();
    assert_send_sync::<MemoryImage>();
    assert_send_sync::<Value>();
}

#[test]
fn ii_cap_surfaces_a_structured_error() {
    // A loop whose recurrence forces II >= 5 cannot schedule under
    // `max_ii: Some(2)`; the failure must surface as the structured
    // `IiCapExceeded` error (with the cap and the MII), not a panic —
    // even with a generous budget.
    use ims::core::{modulo_schedule, ProblemBuilder, SchedError};
    use ims::graph::DepKind;
    use ims::ir::{OpId, Opcode};
    use ims::machine::minimal;

    let machine = minimal();
    let mut pb = ProblemBuilder::new(&machine);
    let a = pb.add_op(Opcode::Add, OpId(0));
    let b = pb.add_op(Opcode::Add, OpId(1));
    pb.add_dep(a, b, 4, 0, DepKind::Flow, false);
    pb.add_dep(b, a, 1, 1, DepKind::Flow, false); // RecMII = ceil(5/1) = 5
    let problem = pb.finish();

    let err = modulo_schedule(
        &problem,
        &SchedConfig {
            max_ii: Some(2),
            budget_ratio: 100.0,
            ..SchedConfig::default()
        },
    )
    .expect_err("II capped below the recurrence bound cannot schedule");
    match err {
        SchedError::IiCapExceeded { cap, mii } => {
            assert_eq!(cap, 2);
            assert_eq!(mii, 5);
        }
    }
    assert!(!err.to_string().is_empty(), "error implements Display");
}

#[test]
fn corpus_runs_are_parallelizable() {
    // The whole measurement pipeline is shared-state-free: running loops
    // from several threads must give the same results as serially.
    use ims::deps::{build_problem, BuildOptions};
    use ims::loopgen::corpus_of_size;
    use ims::machine::cydra;
    use ims::core::modulo_schedule;

    let corpus = corpus_of_size(3, 24);
    let machine = cydra();
    let serial: Vec<i64> = corpus
        .loops
        .iter()
        .map(|l| {
            let p = build_problem(&l.body, &machine, &BuildOptions::default());
            modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
        })
        .collect();

    let parallel: Vec<i64> = std::thread::scope(|scope| {
        let handles: Vec<_> = corpus
            .loops
            .iter()
            .map(|l| {
                let machine = &machine;
                scope.spawn(move || {
                    let p = build_problem(&l.body, machine, &BuildOptions::default());
                    modulo_schedule(&p, &SchedConfig::default()).unwrap().schedule.ii
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    assert_eq!(serial, parallel);
}
