//! Corpus-level integration: the substitute corpus must reproduce the
//! *shape* of the paper's Table 3 statistics, and every corpus loop must
//! schedule to a valid schedule.

use ims::core::{modulo_schedule, validate_schedule, SchedConfig};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::graph::sccs;
use ims::loopgen::corpus_of_size;
use ims::machine::cydra;

#[test]
fn corpus_schedules_validate() {
    let machine = cydra();
    let corpus = corpus_of_size(11, 150);
    for l in &corpus.loops {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0))
            .expect("corpus loops schedule");
        validate_schedule(&problem, &out.schedule).expect("schedules are legal");
    }
}

#[test]
fn corpus_statistics_match_the_papers_shape() {
    let machine = cydra();
    let corpus = corpus_of_size(0xC4D5, 400);

    let mut optimal = 0usize;
    let mut res_limited = 0usize;
    let mut no_nontrivial_scc = 0usize;
    let mut single_op_sccs = 0usize;
    let mut total_sccs = 0usize;
    let mut once_scheduled = 0usize;

    for l in &corpus.loops {
        let body = back_substitute(&l.body, &machine);
        let problem = build_problem(&body, &machine, &BuildOptions::default());
        let out = modulo_schedule(&problem, &SchedConfig::with_budget_ratio(6.0))
            .expect("schedules");
        if out.schedule.ii == out.mii.mii {
            optimal += 1;
        }
        if out.mii.rec_mii <= out.mii.res_mii {
            res_limited += 1;
        }
        if out.stats.final_steps() == problem.num_ops() as u64 {
            once_scheduled += 1;
        }
        let mut w = 0;
        let info = sccs(problem.graph(), &mut w);
        let sizes: Vec<usize> = info
            .components
            .iter()
            .map(|c| {
                c.iter()
                    .filter(|n| **n != problem.start() && **n != problem.stop())
                    .count()
            })
            .filter(|&s| s > 0)
            .collect();
        if sizes.iter().all(|&s| s <= 1) {
            no_nontrivial_scc += 1;
        }
        total_sccs += sizes.len();
        single_op_sccs += sizes.iter().filter(|&&s| s == 1).count();
    }

    let n = corpus.loops.len() as f64;
    // II = MII for the overwhelming majority (paper: 96%).
    assert!(optimal as f64 / n >= 0.90, "optimal: {optimal}/{n}");
    // Most loops resource-limited (paper: 84%).
    assert!(
        (0.70..=0.95).contains(&(res_limited as f64 / n)),
        "res-limited: {res_limited}/{n}"
    );
    // ~77% of loops vectorizable (no non-trivial SCC).
    assert!(
        (0.65..=0.90).contains(&(no_nontrivial_scc as f64 / n)),
        "vectorizable: {no_nontrivial_scc}/{n}"
    );
    // SCCs overwhelmingly single-operation (paper: 93%).
    assert!(
        single_op_sccs as f64 / total_sccs as f64 >= 0.90,
        "single-op SCCs: {single_op_sccs}/{total_sccs}"
    );
    // Most loops scheduled in one pass (paper: 90%).
    assert!(
        once_scheduled as f64 / n >= 0.6,
        "once-scheduled: {once_scheduled}/{n}"
    );
}
