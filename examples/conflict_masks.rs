//! Conflict masks: print the word-parallel MRT encoding of a machine.
//!
//! Every alternative's reservation table is compiled once, at machine
//! construction, into a `ConflictMask`: per-cycle-offset `u64` bitmasks
//! over the resource axis. A modulo-reservation-table probe then ANDs
//! those masks against the MRT's occupancy words instead of scanning
//! `(resource, offset)` pairs one cell at a time (DESIGN.md §5d).
//!
//! This example dumps the compiled masks of the Cydra-5-like machine —
//! one line per `(offset, word, mask)` entry, with the resource names
//! each set bit stands for — and then walks one probe/install/evict
//! round on a small MRT to show the masks in action.
//!
//! Run with: `cargo run --release --example conflict_masks`

use ims::core::Mrt;
use ims::graph::NodeId;
use ims::ir::Opcode;
use ims::machine::{cydra, MachineModel};

/// The resource names behind the set bits of `mask` (bit `i` of word
/// `word` is resource `word * 64 + i`).
fn bit_names(m: &MachineModel, word: u32, mask: u64) -> String {
    let mut names = Vec::new();
    let mut bits = mask;
    while bits != 0 {
        let r = word as usize * 64 + bits.trailing_zeros() as usize;
        names.push(m.resources()[r].name.as_str());
        bits &= bits - 1;
    }
    names.join(", ")
}

fn main() {
    let m = cydra();
    println!(
        "machine `{}`: {} resources -> {} occupancy word(s) per MRT row\n",
        m.name(),
        m.num_resources(),
        m.num_resources().div_ceil(64)
    );

    // --- 1. The compiled masks, opcode by opcode ----------------------
    for (opcode, info) in m.opcodes() {
        println!("{opcode} (latency {}):", info.latency);
        for alt in &info.alternatives {
            let mask = alt.mask();
            println!(
                "  alternative `{}`: {} table use(s) -> {} mask entr{}",
                alt.fu,
                alt.table.uses().len(),
                mask.entries().len(),
                if mask.entries().len() == 1 { "y" } else { "ies" }
            );
            for e in mask.entries() {
                println!(
                    "    offset +{:<2} word {} mask {:#018x}  [{}]",
                    e.offset,
                    e.word,
                    e.mask,
                    bit_names(&m, e.word, e.mask)
                );
            }
        }
    }

    // --- 2. One probe/install/evict round on a small MRT --------------
    // Place a multiply at time 0 with II = 4, then probe an add. The
    // adder and multiplier are separate functional units, but every
    // operation also occupies one of the four instruction-format fields
    // on its issue cycle — so the add's *first* alternative (field f0,
    // taken by the multiply) collides while its second (field f1) is
    // free. Exactly the scan FindTimeSlot runs over an opcode's
    // alternatives, one AND per mask entry.
    let ii = 4;
    let mut mrt = Mrt::new(ii, m.num_resources());
    let mul = &m.info(Opcode::Mul).alternatives[0];

    mrt.place(NodeId(0), mul.mask(), 0);
    println!("\nII = {ii}; placed a {} on `{}` at time 0", Opcode::Mul, mul.fu);
    println!(
        "occupancy words by row: {:?}",
        mrt.occupancy_words()
            .chunks(mul.mask().words_per_row())
            .map(|row| row.iter().map(|w| format!("{w:#x}")).collect::<Vec<_>>())
            .collect::<Vec<_>>()
    );
    for add in &m.info(Opcode::Add).alternatives {
        println!(
            "probe {} alternative `{}` at time 0 -> conflicts: {}",
            Opcode::Add,
            add.fu,
            mrt.conflicts(add.mask(), 0)
        );
    }
    println!(
        "probe {} at time 0 -> conflicts: {} (colliders: {:?})",
        Opcode::Mul,
        mrt.conflicts(mul.mask(), 0),
        mrt.conflicting_nodes(mul.mask(), 0)
    );

    // Evict (§3.4 forced placement does exactly this) and show the table
    // drains back to all-zero words.
    mrt.remove(NodeId(0), mul.mask(), 0);
    println!(
        "after evicting: occupancy all zero = {}",
        mrt.occupancy_words().iter().all(|&w| w == 0)
    );
}
