//! Predicated (IF-converted) loops: scheduling and executing a loop whose
//! body contains conditional stores.
//!
//! The paper's input loops arrive *after* IF-conversion: control flow has
//! been replaced by predicate computations and guarded operations (§1).
//! This example builds `if (x[i] > t) out[i] = x[i]; else out[i] = -x[i];`
//! in predicated form, schedules it, and shows that the pipelined execution
//! matches the sequential one even though predicates from several
//! iterations are in flight simultaneously.
//!
//! Run with: `cargo run --release --example predicated_loop`

use ims::core::{modulo_schedule, SchedConfig};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::graph::DepKind;
use ims::ir::{ArrayId, CmpKind, LoopBuilder, MemRef, Value};
use ims::machine::cydra;
use ims::vliw::{compare_results, run_overlapped, run_sequential, MemoryImage};

fn main() {
    let n = 24u32;
    let mut b = LoopBuilder::new("select", n);
    let x = b.array("x", n as usize);
    let o = b.array("o", n as usize);
    let px = b.ptr("px", x, 0);
    let po = b.ptr("po", o, 0);
    let v = b.load("v", px, Some(MemRef::new(x, 0, 1)));
    let neg = b.sub("neg", 0.0f64, v);
    let p_hi = b.pred_set("p_hi", CmpKind::Gt, v, 2.0f64);
    let p_lo = b.pred_set("p_lo", CmpKind::Le, v, 2.0f64);
    let st_hi = b.store(po, v, Some(MemRef::new(o, 0, 1)));
    b.guard(st_hi, p_hi);
    let st_lo = b.store(po, neg, Some(MemRef::new(o, 0, 1)));
    b.guard(st_lo, p_lo);
    b.addr_add(px, px, 1);
    b.addr_add(po, po, 1);
    let body = b.finish().expect("valid body");

    let machine = cydra();
    let body = back_substitute(&body, &machine);
    let problem = build_problem(&body, &machine, &BuildOptions::default());

    // The predicate inputs appear as control-dependence edges in the graph
    // (the paper attributes its ~3 edges/operation to exactly these).
    let control_edges = problem
        .graph()
        .edges()
        .iter()
        .filter(|e| {
            e.kind == DepKind::Control
                && e.from != problem.start()
                && e.to != problem.stop()
        })
        .count();
    println!(
        "{} operations, {} dependence edges ({} predicate-input edges)",
        problem.num_ops(),
        problem.num_real_edges(),
        control_edges
    );

    let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedulable");
    println!(
        "MII {} -> II {} (schedule length {})",
        out.mii.mii, out.schedule.ii, out.schedule.length
    );

    let mut image = MemoryImage::for_body(&body);
    for i in 0..n as usize {
        image.set(ArrayId(0), i, Value::Float((i % 5) as f64));
    }
    let seq = run_sequential(&body, image.clone()).expect("runs");
    let pipe = run_overlapped(&body, &problem, &out.schedule, image).expect("runs");
    assert!(compare_results(&seq, &pipe).is_none());

    print!("out = [");
    for i in 0..n as usize {
        print!("{}{}", if i > 0 { ", " } else { "" }, seq.memory.get(ArrayId(1), i));
    }
    println!("]");
    println!("pipelined and sequential executions agree under predication.");
}
