//! End-to-end: schedule a SAXPY loop, generate both code forms, execute
//! everything on the VLIW simulator, and check all four executions agree.
//!
//! This walks the paper's whole pipeline (§1): dependence analysis →
//! modulo scheduling → modulo variable expansion (for machines without
//! rotating registers) and kernel-only rotating code (for machines with
//! them) → execution.
//!
//! Run with: `cargo run --release --example pipeline_and_run`

use ims::codegen::{generate_mve, generate_rotating, lifetimes};
use ims::core::{modulo_schedule, SchedConfig};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::ir::{ArrayId, LoopBuilder, MemRef, Value};
use ims::machine::cydra;
use ims::vliw::{
    compare_memory, compare_results, run_mve, run_overlapped, run_rotating, run_sequential,
    MemoryImage,
};

fn main() {
    // y[i] = y[i] + 2.5 * x[i]
    let n = 64u32;
    let mut b = LoopBuilder::new("saxpy", n);
    let x = b.array("x", n as usize);
    let y = b.array("y", n as usize);
    let px = b.ptr("px", x, 0);
    let py = b.ptr("py", y, 0);
    let a = b.live_in("a", Value::Float(2.5));
    let vx = b.load("vx", px, Some(MemRef::new(x, 0, 1)));
    let vy = b.load("vy", py, Some(MemRef::new(y, 0, 1)));
    let ax = b.mul("ax", a, vx);
    let sum = b.add("sum", vy, ax);
    b.store(py, sum, Some(MemRef::new(y, 0, 1)));
    b.addr_add(px, px, 1);
    b.addr_add(py, py, 1);
    let body = b.finish().expect("valid body");

    let machine = cydra();
    let body = back_substitute(&body, &machine);
    let problem = build_problem(&body, &machine, &BuildOptions::default());
    let out = modulo_schedule(&problem, &SchedConfig::default()).expect("schedulable");
    println!(
        "saxpy: MII {} -> II {} ({} stages, schedule length {})",
        out.mii.mii,
        out.schedule.ii,
        out.schedule.stage_count(),
        out.schedule.length
    );

    // Input data.
    let mut image = MemoryImage::for_body(&body);
    for i in 0..n as usize {
        image.set(ArrayId(0), i, Value::Float(i as f64 / 4.0));
        image.set(ArrayId(1), i, Value::Float(100.0 - i as f64));
    }

    // 1. Sequential reference.
    let seq = run_sequential(&body, image.clone()).expect("reference runs");

    // 2. The schedule executed directly with overlapped iterations
    //    (latency-checked EVR semantics).
    let pipe = run_overlapped(&body, &problem, &out.schedule, image.clone()).expect("runs");
    assert!(compare_results(&seq, &pipe).is_none(), "overlapped == sequential");
    println!(
        "overlapped execution: {} cycles (sequential issue would need ~{})",
        pipe.cycles,
        n as i64 * out.schedule.length
    );

    // 3. Modulo variable expansion for a machine without rotating registers.
    let lt = lifetimes(&body, &problem, &out.schedule);
    let mve = generate_mve(&body, &problem, &out.schedule, &lt);
    println!(
        "MVE code: unroll K = {}, {} prologue + {}x{} kernel + {} coda instructions, {} registers",
        mve.unroll,
        mve.prologue.len(),
        mve.kernel_reps,
        mve.kernel.len(),
        mve.coda.len(),
        mve.num_static_regs
    );
    let mve_run = run_mve(&mve, &body, &machine, image.clone()).expect("MVE code runs");
    assert!(compare_memory(&seq.memory, &mve_run.memory).is_none(), "MVE == sequential");

    // 4. Kernel-only rotating-register code.
    let rot = generate_rotating(&body, &problem, &out.schedule, &lt).expect("allocatable");
    println!(
        "rotating code: {} instructions total ({} passes over an II-long kernel), \
         rotating file of {} registers",
        rot.total_cycles(),
        rot.passes,
        rot.rotating_size
    );
    let rot_run = run_rotating(&rot, &body, &machine, image).expect("rotating code runs");
    assert!(compare_memory(&seq.memory, &rot_run.memory).is_none(), "rotating == sequential");

    println!("\nall four executions agree; y[7] = {}", seq.memory.get(ArrayId(1), 7));
}
