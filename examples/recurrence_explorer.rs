//! Recurrence explorer: how loop-carried dependences bound the II, and
//! what back-substitution buys.
//!
//! Schedules a family of recurrence loops — a first-order accumulator, a
//! second-order recurrence, a long multiply chain, and a memory recurrence
//! — and prints, for each, the two MII bounds and the achieved II, with and
//! without recurrence back-substitution of the induction updates.
//!
//! Run with: `cargo run --release --example recurrence_explorer`

use ims::core::{modulo_schedule, SchedConfig};
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::ir::{LoopBody, LoopBuilder, MemRef, Opcode, Value};
use ims::machine::cydra;
use ims::stats::table::Table;

fn accumulator() -> LoopBody {
    let mut b = LoopBuilder::new("accumulator", 32);
    let a = b.array("a", 32);
    let pa = b.ptr("pa", a, 0);
    let s = b.fresh("s");
    b.bind_live_in(s, Value::Float(0.0));
    let v = b.load("v", pa, Some(MemRef::new(a, 0, 1)));
    b.rebind_add(s, s, v);
    b.addr_add(pa, pa, 1);
    b.finish().expect("valid")
}

fn second_order() -> LoopBody {
    let mut b = LoopBuilder::new("second_order", 32);
    let o = b.array("o", 32);
    let po = b.ptr("po", o, 0);
    let w = b.fresh("w");
    b.bind_live_in(w, Value::Float(1.0));
    let lag2 = b.back(w, 1);
    let half = b.op("half", Opcode::Mul, vec![lag2, 0.5f64.into()]);
    b.rebind_add(w, w, half);
    b.store(po, w, Some(MemRef::new(o, 0, 1)));
    b.addr_add(po, po, 1);
    b.finish().expect("valid")
}

fn multiply_chain() -> LoopBody {
    // x = ((x * a) * b) * c : a three-multiply recurrence circuit.
    let mut b = LoopBuilder::new("mul_chain", 32);
    let o = b.array("o", 32);
    let po = b.ptr("po", o, 0);
    let x = b.fresh("x");
    b.bind_live_in(x, Value::Float(1.0));
    let t1 = b.mul("t1", x, 1.01f64);
    let t2 = b.mul("t2", t1, 0.99f64);
    b.rebind(x, Opcode::Mul, vec![t2.into(), 1.0f64.into()]);
    b.store(po, x, Some(MemRef::new(o, 0, 1)));
    b.addr_add(po, po, 1);
    b.finish().expect("valid")
}

fn memory_recurrence() -> LoopBody {
    // a[i+2] = a[i] + 1: a distance-2 recurrence through memory.
    let mut b = LoopBuilder::new("mem_rec", 32);
    let a = b.array("a", 34);
    let pl = b.ptr("pl", a, 0);
    let ps = b.ptr("ps", a, 2);
    let v = b.load("v", pl, Some(MemRef::new(a, 0, 1)));
    let w = b.add("w", v, 1.0f64);
    b.store(ps, w, Some(MemRef::new(a, 2, 1)));
    b.addr_add(pl, pl, 1);
    b.addr_add(ps, ps, 1);
    b.finish().expect("valid")
}

fn main() {
    let machine = cydra();
    let mut t = Table::new(vec![
        "loop".into(),
        "ResMII".into(),
        "RecMII(raw)".into(),
        "II(raw)".into(),
        "RecMII(backsub)".into(),
        "II(backsub)".into(),
    ]);
    for body in [accumulator(), second_order(), multiply_chain(), memory_recurrence()] {
        let raw = build_problem(&body, &machine, &BuildOptions::default());
        let raw_out = modulo_schedule(&raw, &SchedConfig::default()).expect("schedules");
        let bs = back_substitute(&body, &machine);
        let bsp = build_problem(&bs, &machine, &BuildOptions::default());
        let bs_out = modulo_schedule(&bsp, &SchedConfig::default()).expect("schedules");
        t.row(vec![
            body.name().to_string(),
            raw_out.mii.res_mii.to_string(),
            raw_out.mii.rec_mii.to_string(),
            raw_out.schedule.ii.to_string(),
            bs_out.mii.rec_mii.to_string(),
            bs_out.schedule.ii.to_string(),
        ]);
    }
    print!("{}", t.render());
    println!(
        "\nBack-substitution rewrites the address-increment recurrences\n\
         (p = p + c  =>  p = p[-3] + 3c), so only the *true* data recurrences\n\
         (the accumulator's add, the multiply chain) still bound the II."
    );
}
