//! Quickstart: software-pipeline a dot-product loop.
//!
//! Builds the IR for `s += a[i] * b[i]`, analyzes its dependences, computes
//! the MII bounds, runs iterative modulo scheduling on the Cydra-5-like
//! machine, and prints the resulting kernel.
//!
//! Run with: `cargo run --release --example quickstart`

use ims::core::display::{format_kernel, format_schedule};
use ims::core::validate_schedule;
use ims::deps::{back_substitute, build_problem, BuildOptions};
use ims::ir::{LoopBuilder, MemRef, Value};
use ims::machine::cydra;
use ims::prelude::*;

fn main() {
    // --- 1. Write the loop in IR -------------------------------------
    let n = 100;
    let mut b = LoopBuilder::new("dot", n);
    let a = b.array("a", n as usize);
    let bb = b.array("b", n as usize);
    let pa = b.ptr("pa", a, 0);
    let pb = b.ptr("pb", bb, 0);
    let s = b.fresh("s");
    b.bind_live_in(s, Value::Float(0.0));

    let va = b.load("va", pa, Some(MemRef::new(a, 0, 1)));
    let vb = b.load("vb", pb, Some(MemRef::new(bb, 0, 1)));
    let prod = b.mul("prod", va, vb);
    b.rebind_add(s, s, prod); // s += prod  (loop-carried recurrence)
    b.addr_add(pa, pa, 1);
    b.addr_add(pb, pb, 1);
    let body = b.finish().expect("the body is valid");
    println!("{body}");

    // --- 2. Front end: back-substitution + dependence analysis -------
    let machine = cydra();
    let body = back_substitute(&body, &machine);
    let problem = build_problem(&body, &machine, &BuildOptions::default());
    println!(
        "dependence graph: {} operations, {} edges",
        problem.num_ops(),
        problem.num_real_edges()
    );

    // --- 3. Iterative modulo scheduling ------------------------------
    // The builder is the one entry point: configuration via chainable
    // setters, and an optional observer watching every decision. Here a
    // Recorder captures the event stream so we can print a convergence
    // summary afterwards; pass `&mut NullObserver` (or nothing) for a
    // zero-overhead run, or a `TraceWriter` to stream JSON lines.
    let mut recorder = Recorder::default();
    let outcome = Scheduler::new(&problem)
        .config(SchedConfig::new().budget_ratio(6.0))
        .observer(&mut recorder)
        .run()
        .expect("every well-formed loop schedules");
    println!(
        "ResMII = {}, RecMII = {}, MII = {}  ->  achieved II = {} (DeltaII = {})",
        outcome.mii.res_mii,
        outcome.mii.rec_mii,
        outcome.mii.mii,
        outcome.schedule.ii,
        outcome.delta_ii()
    );
    println!(
        "schedule length = {} cycles, {} kernel stages",
        outcome.schedule.length,
        outcome.schedule.stage_count()
    );

    // The schedule is independently validated against every dependence and
    // the modulo reservation table.
    validate_schedule(&problem, &outcome.schedule).expect("schedule is legal");

    // The recorded events reconstruct how the scheduler got there.
    let summary = TraceSummary::from_events(&recorder.events);
    println!("convergence: {}", summary.render_line("dot"));

    // --- 4. Show the schedule and the kernel --------------------------
    println!("\nflat schedule:\n{}", format_schedule(&problem, &outcome.schedule));
    println!("kernel (one row per issue slot; parenthesised stage):");
    print!("{}", format_kernel(&problem, &outcome.schedule));
    println!(
        "\nsteady state: one iteration completes every {} cycles, versus {} \
         cycles for a non-pipelined schedule.",
        outcome.schedule.ii, outcome.schedule.length
    );
}
