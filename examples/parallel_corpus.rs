//! Parallel corpus scheduling: fan a loop corpus out over worker threads.
//!
//! Generates a synthetic corpus, schedules it once sequentially and once on
//! every available core via the std-only worker pool, reports the speedup,
//! and demonstrates the determinism guarantee: the JSON-line output is
//! byte-identical regardless of the thread count.
//!
//! Run with: `cargo run --release --example parallel_corpus`

use std::time::Instant;

use ims::bench::pool::default_threads;
use ims::bench::{corpus_jsonl, measure_corpus_threads};
use ims::loopgen::corpus_of_size;
use ims::machine::cydra;

fn main() {
    let machine = cydra();
    let corpus = corpus_of_size(0xC4D5, 200);
    println!("corpus: {} loops on the Cydra-5-like machine", corpus.loops.len());

    // --- 1. Sequential baseline --------------------------------------
    let t0 = Instant::now();
    let seq = measure_corpus_threads(&corpus, &machine, 6.0, 1);
    let seq_elapsed = t0.elapsed();
    println!("1 thread : {:>8.1} ms", seq_elapsed.as_secs_f64() * 1e3);

    // --- 2. Parallel run on every available core ---------------------
    let threads = default_threads();
    let t0 = Instant::now();
    let par = measure_corpus_threads(&corpus, &machine, 6.0, threads);
    let par_elapsed = t0.elapsed();
    println!(
        "{threads} threads: {:>8.1} ms  ({:.2}x speedup)",
        par_elapsed.as_secs_f64() * 1e3,
        seq_elapsed.as_secs_f64() / par_elapsed.as_secs_f64().max(1e-9)
    );

    // --- 3. Determinism: identical rendered output -------------------
    // Results come back in corpus order no matter how the OS schedules
    // the workers, so anything rendered from them is byte-identical.
    let a = corpus_jsonl(&seq);
    let b = corpus_jsonl(&par);
    assert_eq!(a, b, "corpus output must not depend on the thread count");
    println!("output: {} JSON lines, byte-identical across thread counts", a.lines().count());

    // The aggregate line summarises the whole run.
    println!("aggregate: {}", a.lines().last().unwrap());
}
